"""An interactive grammar-definition session — the paper's use case, as a
command-line tool.

Section 1 motivates IPG with *"an environment where language definitions
are developed (and modified) interactively"*.  This module is that
environment in miniature: a read-eval-print loop over grammar edits and
parse requests, with no generation pauses because there is no generation
phase.

Run it::

    python -m repro

or script it::

    echo 'add B ::= true
    add START ::= B
    parse true' | python -m repro

Besides the REPL there are two service subcommands (see
:mod:`repro.service`):

``python -m repro serve``
    Answer line-delimited JSON requests on stdin (one response per
    request on stdout, each with ``time`` and — for parses — ``cache``
    fields).  With ``--tcp HOST:PORT`` or ``--unix PATH`` the same
    protocol is served concurrently over a socket by the sharded
    scheduler (``--workers N`` worker shards; sessions are partitioned
    across them), with bounded backpressure and graceful SIGTERM drain
    (see :mod:`repro.service.net`).

``python -m repro batch [file...]``
    Run the same requests non-interactively from files (or stdin)
    through the sharded scheduler — pipelined under a bounded in-flight
    window, responses in request order — printing responses to stdout
    and a throughput/cache summary to stderr (``--serial`` restores the
    original single-threaded runner).

``python -m repro corpus VERB ...``
    Manage persistent corpora under ``--root DIR``: ``create`` a corpus
    bound to a grammar, ``ingest`` documents (content-hashed, duplicate
    free), ``parse`` them resumably across scheduler shards, ``query``
    the stored results, and inspect ``status``/``info``.

``python -m repro obs [file...]``
    Drive JSON requests (from files, ``-`` for stdin, or a built-in
    demo workload) through a thread-mode scheduler and print the
    unified :mod:`repro.obs` metrics registry as Prometheus text or
    JSON (``--format``), optionally with recent span trees
    (``--spans N``) and a slow-request log (``--slow-ms``).

Commands
--------

========================  ==================================================
``add A ::= x B y``       ADD-RULE (names with existing rules are sorts)
``sort N``                predeclare a sort for forward references
``delete A ::= x``        DELETE-RULE
``parse tok tok ...``     parse a sentence; prints every tree
``recognize tok ...``     accept/reject only
``trace tok tok ...``     parse and print every LR move (Fig. 4.2),
                          each with the token position it consumed and
                          its line/column in the input
``edit i j tok ...``      splice-edit the last input (replace tokens
                          ``[i:j]``) and *incrementally* re-parse it
``engine [name]``         show the engine registry / pick the engine
``lexer [kind]``          show or switch the tokenizer
                          (``whitespace`` or ``scanner``)
``show``                  the current grammar
``summary``               item-set graph statistics
``fraction``              §5.2: how much of the full table exists
``gc``                    run the mark-and-sweep collector
``trees on|off``          toggle tree printing
``help`` / ``quit``
========================  ==================================================

Parsing runs through :mod:`repro.api`: rejected inputs print a diagnostic
line with the offending token's position and the expected terminal set,
and ``engine`` switches between every registered parsing runtime
(``lazy`` / ``compiled`` / ``dense`` / ``gss`` / ``earley``).  With
``lexer scanner`` the REPL derives an ISG scanner from the grammar's own
terminals (kept in sync with ``add``/``delete``), so punctuation no
longer needs surrounding blanks: ``parse (n+n)*n``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional

from .api import ScannerTokenizer, WhitespaceTokenizer, engine_descriptions, engines
from .core.ipg import IPG
from .grammar.grammar import Grammar, GrammarError
from .runtime.errors import CapabilityError, ParseError
from .runtime.forest import bracketed

PROMPT = "ipg> "

#: The REPL prints at most this many derivations per accepted parse; the
#: forest handle keeps the true count available (shown in the header line)
#: even when the listing is truncated.
_TREE_PRINT_CAP = 64

_HELP = """commands:
  add <rule>        e.g.  add E ::= E + T        (ADD-RULE)
  sort <names...>   predeclare sorts for forward references
  delete <rule>     e.g.  delete E ::= E + T     (DELETE-RULE)
  parse <tokens>    parse and print every tree
  recognize <toks>  accept/reject only
  trace <tokens>    parse and print every LR move with the token
                    position (and line/column) it consumed
  edit <i> <j> [tokens]  replace tokens [i:j] of the last input and
                    re-parse incrementally from its checkpoints
  engine [name]     show the engine registry / pick the parse engine
  lexer [kind]      show or switch the tokenizer (whitespace|scanner)
  show              print the grammar
  summary           item-set graph statistics
  fraction          fraction of the full parse table generated (§5.2)
  gc                run the mark-and-sweep collector
  trees on|off      toggle tree printing
  help, quit"""


class ReplSession:
    """The command interpreter; IO-free for testability."""

    def __init__(self) -> None:
        self.ipg = IPG(Grammar())
        self.language = self.ipg.language
        self.declared_sorts: set = set()
        self.print_trees = True
        self.finished = False
        #: the last parse/recognize outcome — the base the ``edit``
        #: command splices and incrementally re-parses
        self.last_outcome = None

    # -- the dispatcher -----------------------------------------------------

    def execute(self, line: str) -> List[str]:
        """Run one command line; returns the output lines."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return []
        command, _, argument = stripped.partition(" ")
        handler = self._handlers().get(command)
        if handler is None:
            return [f"unknown command {command!r} — try 'help'"]
        try:
            return handler(argument.strip())
        except (GrammarError, ParseError) as error:
            return [f"error: {error}"]

    def _handlers(self) -> Dict[str, Callable[[str], List[str]]]:
        return {
            "add": self._add,
            "sort": self._sort,
            "delete": self._delete,
            "parse": self._parse,
            "recognize": self._recognize,
            "trace": self._trace,
            "edit": self._edit,
            "engine": self._engine,
            "lexer": self._lexer,
            "show": self._show,
            "summary": self._summary,
            "fraction": self._fraction,
            "gc": self._gc,
            "trees": self._trees,
            "help": lambda _arg: [_HELP],
            "quit": self._quit,
            "exit": self._quit,
        }

    # -- commands ------------------------------------------------------

    def _add(self, text: str) -> List[str]:
        if self.ipg.add_rule(text, sorts=self.declared_sorts):
            return [f"added: {self.ipg.coerce_rule(text, self.declared_sorts)}"]
        return ["(rule already present)"]

    def _sort(self, text: str) -> List[str]:
        names = text.split()
        if not names:
            return ["usage: sort <names...>"]
        self.declared_sorts.update(names)
        return [f"sorts declared: {' '.join(sorted(self.declared_sorts))}"]

    def _delete(self, text: str) -> List[str]:
        if self.ipg.delete_rule(text, sorts=self.declared_sorts):
            return ["deleted"]
        return ["(no such rule)"]

    def _parse(self, text: str) -> List[str]:
        # Checkpointed so a follow-up ``edit`` can resume instead of
        # re-parsing (engines without reparse support just parse).
        outcome = self.language.parse(text, checkpoint=True)
        self.last_outcome = outcome
        if not outcome.accepted:
            return self._rejection(outcome)
        if not outcome.trees_built:
            return [f"accepted (engine {outcome.engine} builds no trees)"]
        return self._accepted_lines(outcome)

    def _accepted_lines(self, outcome) -> List[str]:
        """``accepted (N parses)`` plus (capped) bracketed derivations."""
        count = outcome.ambiguity
        lines = [f"accepted ({count} parse{'s' if count != 1 else ''})"]
        if self.print_trees and outcome.forest is not None:
            shown = 0
            for tree in outcome.forest.trees(_TREE_PRINT_CAP):
                lines.append(f"  {bracketed(tree)}")
                shown += 1
            if count > shown:
                lines.append(f"  ... ({count - shown} more; showing {shown})")
        return lines

    def _recognize(self, text: str) -> List[str]:
        outcome = self.language.recognize(text, checkpoint=True)
        self.last_outcome = outcome
        if outcome.accepted:
            return ["accepted"]
        return self._rejection(outcome)

    def _edit(self, text: str) -> List[str]:
        if self.last_outcome is None:
            return ["nothing to edit — parse or recognize an input first"]
        parts = text.split()
        if len(parts) < 2 or not parts[0].isdigit() or not parts[1].isdigit():
            return ["usage: edit <start> <end> [replacement tokens...]"]
        start, end = int(parts[0]), int(parts[1])
        replacement = " ".join(parts[2:])
        outcome = self.language.reparse(self.last_outcome, start, end, replacement)
        self.last_outcome = outcome
        reuse = outcome.reuse or {}
        if reuse.get("fallback"):
            detail = f"full re-parse ({reuse['fallback']})"
        else:
            parsed = reuse.get("parsed_tokens")
            total = reuse.get("total_tokens")
            detail = f"re-parsed {parsed} of {total} tokens"
            if reuse.get("converged_at") is not None:
                detail += f", converged at token {reuse['converged_at']}"
        lines = [f"edited [{start}:{end}] -> {replacement!r} ({detail})"]
        if not outcome.accepted:
            return lines + self._rejection(outcome)
        if not outcome.trees_built:
            return lines + ["accepted"]
        return lines + self._accepted_lines(outcome)

    def _trace(self, text: str) -> List[str]:
        if not text:
            return ["usage: trace <tokens>"]
        from .runtime.trace import Trace

        trace = Trace()
        # No checkpoint: tracing routes through the pool parser, which
        # records moves instead of resumable frontiers (they are mutually
        # exclusive in the API) — so ``edit`` keeps its previous base.
        # Recognizer-only engines have no pool to trace; fall back to
        # recognition and report that no LR moves were recorded.
        try:
            outcome = self.language.parse(text, trace=trace)
        except CapabilityError:
            outcome = self.language.recognize(text)
        verdict = "accepted" if outcome.accepted else "rejected"
        lines = [
            f"{verdict} — {len(trace)} move"
            f"{'s' if len(trace) != 1 else ''} (engine {outcome.engine})"
        ]
        diagnostic = outcome.diagnostic
        if diagnostic is not None and (
            diagnostic.expected or diagnostic.kind != "syntax"
        ):
            lines.append(f"  {diagnostic.describe()}")
        lexemes: tuple = ()
        source = None
        if diagnostic is None or diagnostic.kind != "lexical":
            lexed = self.language.lex(text)
            lexemes, source = lexed.lexemes, lexed.text
        lines.extend(
            "  " + self._describe_move(event, lexemes, source)
            for event in trace.events
        )
        if not trace.events and outcome.accepted:
            lines.append(f"  (engine {outcome.engine} records no LR moves)")
        return lines

    @staticmethod
    def _describe_move(event, lexemes, source: Optional[str]) -> str:
        """One trace event, with the consumed token's position/line/col."""
        data = event.to_dict()
        parts = [f"{data['kind']:<6}", f"state={data['state']}"]
        if "symbol" in data:
            parts.append(f"on={data['symbol']}")
        if "rule" in data:
            parts.append(f"rule=({data['rule']})")
        if "target" in data:
            parts.append(f"-> {data['target']}")
        position = data.get("position")
        if position is not None and 0 <= position < len(lexemes):
            lexeme = lexemes[position]
            where = f"token {position} {lexeme.text!r}"
            if source is not None:
                from .api.diagnostics import line_and_column

                line, column = line_and_column(source, lexeme.position)
                where += f" at line {line}, column {column}"
            parts.append(f"[{where}]")
        return " ".join(parts)

    @staticmethod
    def _rejection(outcome) -> List[str]:
        lines = ["rejected"]
        diagnostic = outcome.diagnostic
        if diagnostic is not None and (
            diagnostic.expected or diagnostic.kind != "syntax"
        ):
            lines.append(f"  {diagnostic.describe()}")
        return lines

    def _engine(self, text: str) -> List[str]:
        if not text:
            current = self.language.default_engine
            details = engines(detail=True)
            lines = []
            for name, record in details.items():
                flags = ",".join(
                    flag
                    for flag in ("trees", "ambiguity", "reparse")
                    if record[f"supports_{flag}"]
                )
                lines.append(
                    f"{'*' if name == current else ' '} {name:10s} "
                    f"[{flags or 'recognize-only'}] {record['summary']}"
                )
            return lines
        if text not in engines():
            return [
                f"unknown engine {text!r} — known: {', '.join(engines())}"
            ]
        self.language.use_engine(text)
        return [f"engine set to {text}"]

    def _lexer(self, text: str) -> List[str]:
        if not text:
            return [f"lexer: {self.language.tokenizer.describe()}"]
        if text == "whitespace":
            self.language.use_tokenizer(WhitespaceTokenizer())
        elif text == "scanner":
            self.language.use_tokenizer(
                ScannerTokenizer.from_grammar(self.language.grammar)
            )
        else:
            return ["usage: lexer [whitespace|scanner]"]
        return [f"lexer: {self.language.tokenizer.describe()}"]

    def _show(self, _argument: str) -> List[str]:
        listing = self.ipg.grammar.pretty()
        return listing.splitlines() if listing else ["(empty grammar)"]

    def _summary(self, _argument: str) -> List[str]:
        summary = self.ipg.summary()
        return [
            ", ".join(f"{key}={value}" for key, value in summary.items())
        ]

    def _fraction(self, _argument: str) -> List[str]:
        if not self.ipg.grammar.start_rules():
            return ["no START rule yet"]
        return [f"{self.ipg.table_fraction():.0%} of the full table generated"]

    def _gc(self, _argument: str) -> List[str]:
        removed = self.ipg.collect_garbage(force_sweep=True)
        return [f"reclaimed {removed} item sets"]

    def _trees(self, argument: str) -> List[str]:
        if argument not in ("on", "off"):
            return ["usage: trees on|off"]
        self.print_trees = argument == "on"
        return [f"tree printing {argument}"]

    def _quit(self, _argument: str) -> List[str]:
        self.finished = True
        return ["bye"]


def run_session(lines: Iterable[str]) -> List[str]:
    """Execute a scripted session; returns all output lines."""
    session = ReplSession()
    output: List[str] = []
    for line in lines:
        output.extend(session.execute(line))
        if session.finished:
            break
    return output


_USAGE = """usage: python -m repro [subcommand]

subcommands:
  (none) | repl     the interactive grammar-definition REPL
  serve             answer line-delimited JSON requests on stdin, or —
                    with --tcp HOST:PORT / --unix PATH — over a socket
                    via the sharded concurrent scheduler (--workers N,
                    --mode thread|process, --queue-depth, --batch,
                    --ready-file; see README "Serving")
  batch [file...]   run JSON requests from files (or stdin) through the
                    sharded scheduler (--workers, --mode, --window,
                    --serial for the old single-threaded runner) and
                    print responses plus a throughput summary on stderr
  corpus VERB ...   manage persistent corpora under --root DIR:
                    create | ingest | parse | status | query | info
                    (see README "Corpus service")
  obs [file...]     drive JSON requests (or a built-in demo workload)
                    through a thread-mode scheduler and print the obs
                    metrics registry (--format prometheus|json,
                    --spans N, --slow-ms MS)
  help              this message"""


def _repl_main() -> int:
    session = ReplSession()
    interactive = sys.stdin.isatty()
    if interactive:
        print("IPG — incremental parser generator "
              "(Heering/Klint/Rekers 1989).  'help' for commands.")
    while not session.finished:
        if interactive:
            print(PROMPT, end="", flush=True)
        line = sys.stdin.readline()
        if not line:
            break
        for out in session.execute(line):
            print(out)
    return 0


def _serve_main(args: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the line-delimited JSON parse protocol: on stdin by "
            "default, or concurrently over TCP/UNIX sockets with session "
            "sharding, request coalescing, bounded backpressure, and "
            "graceful SIGTERM drain."
        ),
    )
    parser.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP address (PORT 0 picks a free port)",
    )
    parser.add_argument(
        "--unix", metavar="PATH", help="listen on a UNIX-domain socket"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker shards; sessions are partitioned across them "
        "(default: 1)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        help="shard flavour: 'process' gives true CPU parallelism, "
        "'thread' shares one in-process workspace "
        "(default: process when --workers > 1, else thread)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        metavar="N",
        help="per-shard queue bound; beyond it requests are answered "
        "with an 'overloaded' error (default: 256)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=16,
        metavar="N",
        help="max requests a shard drains and coalesces at once "
        "(default: 16)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="LRU result-cache entries (per shard in process mode; "
        "default: 1024)",
    )
    parser.add_argument(
        "--corpus-root",
        metavar="DIR",
        help="enable the corpus-* commands, persisting corpora (documents, "
        "parse results, completion journals) under DIR across restarts",
    )
    parser.add_argument(
        "--table-cache",
        metavar="DIR",
        help="persistent content-addressed table store: sessions warm-start "
        "their LR control planes from DIR and write newly materialized "
        "states back (shared across processes, shards, and CI runs)",
    )
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write the bound address to PATH once listening "
        "(for scripts driving --tcp HOST:0)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="default per-request wall-clock budget; requests that "
        "exceed it answer with a 'deadline-exceeded' error "
        "(requests may override via their 'deadline_ms' field)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="K",
        help="process-shard circuit breaker: more than K restarts "
        "inside --restart-window marks the shard degraded "
        "(default: 5)",
    )
    parser.add_argument(
        "--restart-window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="sliding window the circuit breaker counts restarts over "
        "(default: 60)",
    )
    parser.add_argument(
        "--backoff-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="base delay of the jittered exponential backoff between "
        "shard restarts (default: 50)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="log requests slower than MS milliseconds to stderr as "
        "indented span trees (same knob as REPRO_OBS_SLOW_MS)",
    )
    options = parser.parse_args(args)

    if options.tcp and options.unix:
        parser.error("--tcp and --unix are mutually exclusive")
    if options.workers < 1:
        parser.error("--workers must be at least 1")
    if options.queue_depth < 1 or options.batch < 1:
        parser.error("--queue-depth and --batch must be at least 1")
    if options.cache_capacity < 1:
        parser.error("--cache-capacity must be at least 1")
    if options.deadline_ms is not None and options.deadline_ms <= 0:
        parser.error("--deadline-ms must be positive")
    if options.max_restarts < 1:
        parser.error("--max-restarts must be at least 1")
    if options.restart_window <= 0:
        parser.error("--restart-window must be positive")
    if options.backoff_ms < 0:
        parser.error("--backoff-ms must be non-negative")
    if options.slow_ms is not None:
        if options.slow_ms < 0:
            parser.error("--slow-ms must be non-negative")
        from . import obs

        obs.set_slow_threshold(options.slow_ms)
    networked = bool(options.tcp or options.unix)
    if not networked:
        # Everything scheduler- or socket-shaped needs a socket transport;
        # silently ignoring these flags would fake configured behaviour.
        for flag, default in (
            ("workers", 1),
            ("mode", None),
            ("queue_depth", 256),
            ("batch", 16),
            ("ready_file", None),
        ):
            if getattr(options, flag) != default:
                parser.error(
                    f"--{flag.replace('_', '-')} needs --tcp or --unix "
                    f"(the stdin loop is single-threaded by design)"
                )
        from .service.dispatcher import Dispatcher
        from .service.server import serve

        return serve(
            sys.stdin,
            sys.stdout,
            Dispatcher(
                cache_capacity=options.cache_capacity,
                default_deadline_ms=options.deadline_ms,
                corpus_root=options.corpus_root,
                table_cache=options.table_cache,
            ),
        )

    host: Optional[str] = None
    port: Optional[int] = None
    if options.tcp:
        address, _, port_text = options.tcp.rpartition(":")
        if not address or not port_text.isdigit():
            parser.error(f"--tcp wants HOST:PORT, got {options.tcp!r}")
        host, port = address, int(port_text)

    from .service.net import run_server
    from .service.scheduler import Scheduler

    mode = options.mode
    if mode is None:
        mode = "process" if options.workers > 1 else "thread"
    scheduler = Scheduler(
        workers=options.workers,
        mode=mode,
        max_depth=options.queue_depth,
        max_batch=options.batch,
        cache_capacity=options.cache_capacity,
        deadline_ms=options.deadline_ms,
        max_restarts=options.max_restarts,
        restart_window=options.restart_window,
        backoff_ms=options.backoff_ms,
        corpus_root=options.corpus_root,
        table_cache=options.table_cache,
    )
    return run_server(
        scheduler,
        host=host,
        port=port,
        unix_path=options.unix,
        ready_file=options.ready_file,
    )


def _batch_main(args: List[str]) -> int:
    """``repro batch`` — run JSON requests non-interactively.

    Migration note (PR 8): batch runs are now routed through the sharded
    scheduler — requests are pipelined under a bounded in-flight window
    instead of being served one at a time by the serial dispatcher, so
    ``--workers``/``--mode`` buy real concurrency and ``--corpus-root``
    enables the ``corpus-*`` commands.  Responses still arrive in
    request order and per-session ordering is unchanged (sessions are
    shard-pinned, shards drain FIFO); ``--serial`` restores the PR 1
    single-threaded runner exactly.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "Run line-delimited JSON requests from files (or stdin) "
            "through the sharded scheduler, printing responses to stdout "
            "and a throughput/cache summary to stderr."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="file",
        help="request files; none reads stdin",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="scheduler shards to pipeline across (default: 1)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        help="shard flavour (default: process when --workers > 1, "
        "else thread)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="max requests in flight at once (default: 64)",
    )
    parser.add_argument(
        "--corpus-root",
        metavar="DIR",
        help="enable the corpus-* commands, persisting corpora under DIR",
    )
    parser.add_argument(
        "--table-cache",
        metavar="DIR",
        help="warm-start sessions from (and write back to) the persistent "
        "table store under DIR",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="bypass the scheduler and serve requests one at a time "
        "through the single-threaded dispatcher (pre-corpus behaviour)",
    )
    options = parser.parse_args(args)
    if options.workers < 1:
        parser.error("--workers must be at least 1")
    if options.window is not None and options.window < 1:
        parser.error("--window must be at least 1")
    if options.serial and (options.workers != 1 or options.mode):
        parser.error("--serial is single-threaded; drop --workers/--mode")

    from .service.protocol import encode
    from .service.server import BATCH_WINDOW, run_batch

    if options.paths:
        lines: List[str] = []
        for path in options.paths:
            try:
                with open(path) as handle:
                    lines.extend(handle.readlines())
            except OSError as error:
                print(f"error: cannot read {path!r}: {error}", file=sys.stderr)
                return 2
    else:
        lines = sys.stdin.readlines()

    if options.serial:
        from .service.dispatcher import Dispatcher

        handler = Dispatcher(
            corpus_root=options.corpus_root, table_cache=options.table_cache
        )
        closer = handler.close
    else:
        from .service.scheduler import Scheduler

        mode = options.mode or ("process" if options.workers > 1 else "thread")
        handler = Scheduler(
            workers=options.workers,
            mode=mode,
            corpus_root=options.corpus_root,
            table_cache=options.table_cache,
        )
        closer = handler.close
    try:
        responses, summary = run_batch(
            lines,
            handler,
            window=options.window or BATCH_WINDOW,
        )
    finally:
        closer()

    for response in responses:
        print(encode(response))
    print(json.dumps(summary, sort_keys=True), file=sys.stderr)
    return 1 if summary["errors"] else 0


#: the grammar and requests ``repro obs`` runs when given no input files —
#: a little of everything so every metric family has data: lazy expansion
#: (open), parsing (accept + reject + cache hit), checkpointed parse and
#: an incremental edit-parse, and a traced request for the span ring.
_OBS_DEMO_GRAMMAR = (
    "START ::= B\n"
    "B ::= true\n"
    "B ::= false\n"
    "B ::= B and B\n"
    "B ::= B or B\n"
    "B ::= ( B )"
)


def _obs_demo_requests() -> List[dict]:
    session = "obs-demo"
    return [
        {"cmd": "open", "session": session, "grammar": _OBS_DEMO_GRAMMAR},
        {"cmd": "parse", "session": session, "tokens": "true and false"},
        {"cmd": "parse", "session": session, "tokens": "true and false"},
        {"cmd": "parse", "session": session, "tokens": "true and and"},
        {"cmd": "recognize", "session": session, "tokens": "false or true"},
        {
            "cmd": "parse",
            "session": session,
            "tokens": "true or false and true",
            "checkpoint": True,
            "trace": True,
        },
    ]


def _obs_main(args: List[str]) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Drive JSON requests (files, '-' for stdin, or a built-in "
            "demo workload) through a thread-mode scheduler and print "
            "the unified telemetry registry: Prometheus text or JSON, "
            "optionally with recent span trees."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="file",
        help="request files ('-' reads stdin); none runs the demo workload",
    )
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="export format (default: prometheus)",
    )
    parser.add_argument(
        "--spans",
        type=int,
        default=0,
        metavar="N",
        help="include the N most recent span trees (implies tracing the "
        "driven requests)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="thread-mode shards to drive (default: 2, so per-shard "
        "latency series appear)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="log requests slower than MS milliseconds to stderr as "
        "indented span trees (same knob as REPRO_OBS_SLOW_MS)",
    )
    options = parser.parse_args(args)
    if options.workers < 1:
        parser.error("--workers must be at least 1")
    if options.spans < 0:
        parser.error("--spans must be non-negative")
    if options.slow_ms is not None and options.slow_ms < 0:
        parser.error("--slow-ms must be non-negative")

    from . import obs
    from .service.protocol import ProtocolError, iter_requests
    from .service.scheduler import Scheduler

    if options.slow_ms is not None:
        obs.set_slow_threshold(options.slow_ms)

    if options.paths:
        requests: List[dict] = []
        for path in options.paths:
            try:
                text = (
                    sys.stdin.read()
                    if path == "-"
                    else open(path).read()
                )
            except OSError as error:
                print(f"error: cannot read {path!r}: {error}", file=sys.stderr)
                return 2
            try:
                requests.extend(iter_requests(text))
            except ProtocolError as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                return 2
    else:
        requests = _obs_demo_requests()
    if options.spans:
        for request in requests:
            request.setdefault("trace", True)

    # Thread mode: one shared workspace, and the export carries both the
    # dispatcher-side series and this scheduler's per-shard histograms.
    scheduler = Scheduler(workers=options.workers, mode="thread")
    errors = 0
    try:
        checkpoint_id = None
        for request in requests:
            response = scheduler.handle(request)
            if "error" in response:
                errors += 1
                print(f"error: {response['error']}", file=sys.stderr)
            elif "result" in response:
                checkpoint_id = (request.get("session"), response["result"])
        if not options.paths and checkpoint_id is not None:
            # Demo mode: splice-edit the checkpointed parse so the
            # incremental reuse counters have data too.
            session, result = checkpoint_id
            follow_up = {
                "cmd": "edit-parse",
                "session": session,
                "base": result,
                "edit": {"start": 2, "end": 3, "replacement": "true"},
            }
            if options.spans:
                follow_up["trace"] = True
            response = scheduler.handle(follow_up)
            if "error" in response:
                errors += 1
                print(f"error: {response['error']}", file=sys.stderr)
        export = {"cmd": "metrics-export", "format": options.format}
        if options.spans:
            export["spans"] = options.spans
        exported = scheduler.handle(export)
    finally:
        scheduler.close()
    if "error" in exported:
        print(f"error: {exported['error']}", file=sys.stderr)
        return 1
    if options.format == "prometheus":
        print(exported["text"], end="")
        if options.spans:
            for tree in exported.get("spans", ()):
                print(obs.render_span_tree(tree), file=sys.stderr)
    else:
        payload = {"metrics": exported["metrics"]}
        if options.spans:
            payload["spans"] = exported.get("spans", [])
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if errors else 0


def _corpus_main(args: List[str]) -> int:
    """``repro corpus`` — drive the corpus service against a local root.

    Each verb builds a scheduler over ``--root``, issues the matching
    ``corpus-*`` protocol command, prints the JSON response, and exits
    non-zero on an error response — so shell pipelines can script the
    same ingest → parse → query flow a TCP client would.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro corpus",
        description=(
            "Manage persistent corpora: create, bulk-ingest documents, "
            "batch-parse them across scheduler shards (resumably), and "
            "query the stored results."
        ),
    )
    parser.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="corpus root directory (created on demand, survives restarts)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="scheduler shards to parse across (default: 1)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        help="shard flavour (default: process when --workers > 1, "
        "else thread)",
    )
    parser.add_argument(
        "--table-cache",
        metavar="DIR",
        help="warm-start corpus worker sessions from (and write back to) "
        "the persistent table store under DIR",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    create = verbs.add_parser(
        "create", help="register a corpus bound to a grammar and engine"
    )
    create.add_argument("name", help="corpus name")
    create.add_argument(
        "--grammar-file",
        required=True,
        metavar="PATH",
        help="grammar rules, one per line ('-' reads stdin)",
    )
    create.add_argument(
        "--sorts",
        nargs="*",
        default=[],
        metavar="SORT",
        help="sorts to predeclare for forward references",
    )
    create.add_argument(
        "--engine", metavar="NAME", help="parse engine (default: session default)"
    )

    ingest = verbs.add_parser(
        "ingest", help="add documents (content-hashed, duplicates skipped)"
    )
    ingest.add_argument("name", help="corpus name")
    ingest.add_argument(
        "files", nargs="*", metavar="file", help="document files to ingest"
    )
    ingest.add_argument(
        "--manifest",
        metavar="DIR",
        help="ingest every file under DIR (recursively, sorted)",
    )

    parse_verb = verbs.add_parser(
        "parse", help="batch-parse every unparsed document, resumably"
    )
    parse_verb.add_argument("name", help="corpus name")
    parse_verb.add_argument(
        "--window",
        type=int,
        metavar="N",
        help="in-flight documents per shard (default: 2)",
    )
    parse_verb.add_argument(
        "--no-wait",
        action="store_true",
        help="start the job and return immediately instead of waiting",
    )

    status = verbs.add_parser("status", help="progress, store and journal counts")
    status.add_argument("name", help="corpus name")

    query = verbs.add_parser("query", help="paginated queries over stored results")
    query.add_argument("name", help="corpus name")
    query.add_argument(
        "--kind",
        required=True,
        choices=("match", "errors"),
        help="match: occurrences of a nonterminal; errors: grouped "
        "diagnostic summaries",
    )
    query.add_argument(
        "--nonterminal", metavar="NAME", help="nonterminal to match (kind=match)"
    )
    query.add_argument("--page", type=int, default=0, metavar="N")
    query.add_argument("--page-size", type=int, default=50, metavar="N")
    query.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the query read-through cache (Korp's cache=false)",
    )

    info = verbs.add_parser("info", help="list corpora, or one corpus in full")
    info.add_argument("name", nargs="?", help="corpus name (omit to list all)")

    options = parser.parse_args(args)
    if options.workers < 1:
        parser.error("--workers must be at least 1")

    request: dict = {"cmd": f"corpus-{options.verb}"}
    if options.verb == "create":
        try:
            grammar = (
                sys.stdin.read()
                if options.grammar_file == "-"
                else open(options.grammar_file).read()
            )
        except OSError as error:
            print(
                f"error: cannot read {options.grammar_file!r}: {error}",
                file=sys.stderr,
            )
            return 2
        request.update(corpus=options.name, grammar=grammar, sorts=options.sorts)
        if options.engine:
            request["engine"] = options.engine
    elif options.verb == "ingest":
        if not options.files and not options.manifest:
            parser.error("ingest needs document files and/or --manifest DIR")
        request["corpus"] = options.name
        if options.files:
            request["files"] = options.files
        if options.manifest:
            request["manifest"] = options.manifest
    elif options.verb == "parse":
        request.update(corpus=options.name, wait=not options.no_wait)
        if options.window is not None:
            request["window"] = options.window
    elif options.verb == "status":
        request["corpus"] = options.name
    elif options.verb == "query":
        request.update(
            corpus=options.name,
            kind=options.kind,
            page=options.page,
            page_size=options.page_size,
            cache=not options.no_cache,
        )
        if options.nonterminal:
            request["nonterminal"] = options.nonterminal
    elif options.verb == "info" and options.name:
        request["corpus"] = options.name

    from .service.scheduler import Scheduler

    mode = options.mode or ("process" if options.workers > 1 else "thread")
    scheduler = Scheduler(
        workers=options.workers,
        mode=mode,
        corpus_root=options.root,
        table_cache=options.table_cache,
    )
    try:
        response = scheduler.handle(request)
    finally:
        scheduler.close()
    print(json.dumps(response, indent=2, sort_keys=True))
    return 1 if "error" in response else 0


def main(argv: Optional[List[str]] = None) -> int:
    """The ``python -m repro`` / ``repro`` entry point."""
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        if not args or args[0] == "repl":
            return _repl_main()
        command, rest = args[0], args[1:]
        if command == "serve":
            return _serve_main(rest)
        if command == "batch":
            return _batch_main(rest)
        if command == "corpus":
            return _corpus_main(rest)
        if command == "obs":
            return _obs_main(rest)
        if command in ("help", "-h", "--help"):
            print(_USAGE)
            return 0
        print(_USAGE, file=sys.stderr)
        print(f"error: unknown subcommand {command!r}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader closed early (`python -m repro help | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
