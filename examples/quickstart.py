#!/usr/bin/env python3
"""Quickstart: the booleans grammar of Fig. 4.1, end to end.

Shows the three headline behaviours of IPG:

1. construction is free — the parse table is generated *while parsing*;
2. the grammar can be modified mid-session and only the affected parts of
   the table are regenerated;
3. the parser handles ambiguity by returning every parse tree.

Run:  python examples/quickstart.py
"""

from repro import IPG
from repro.runtime.forest import bracketed


def main() -> None:
    ipg = IPG.from_text(
        """
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
        """
    )
    print("freshly constructed:", ipg.summary())

    # --- lazy generation: the table grows as sentences need it ---------
    result = ipg.parse("true and true")
    print("\n'true and true' accepted:", result.accepted)
    print("after one sentence:     ", ipg.summary())
    print("fraction of full table: ", f"{ipg.table_fraction():.0%}")

    result = ipg.parse("false or false")
    print("\n'false or false' accepted:", result.accepted)
    print("after covering 'or'/'false':", f"{ipg.table_fraction():.0%}")

    # --- incremental modification (section 6) ---------------------------
    print("\nadding rule: B ::= unknown")
    ipg.add_rule("B ::= unknown")
    result = ipg.parse("true and unknown")
    print("'true and unknown' accepted:", result.accepted)

    print("deleting it again")
    ipg.delete_rule("B ::= unknown")
    print("'unknown' accepted now:", ipg.recognize("unknown"))

    # --- ambiguity: every parse comes back -------------------------------
    result = ipg.parse("true or false and true")
    print(f"\n'true or false and true' has {len(result.trees)} parses:")
    for tree in result.trees:
        print("  ", bracketed(tree))


if __name__ == "__main__":
    main()
