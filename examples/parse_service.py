#!/usr/bin/env python3
"""The multi-session parse service, driven in-process.

Many users develop language definitions at once (the interactive
environment of section 1, scaled up): each gets a named session in one
shared :class:`~repro.service.workspace.Workspace`, requests go through
the JSON protocol of :class:`~repro.service.dispatcher.Dispatcher`, and
repeated parses are answered from the LRU result cache until the next
grammar edit invalidates them.  The same exchange works over stdio via
``python -m repro serve``.

Run:  PYTHONPATH=src python examples/parse_service.py
"""

import json

from repro.service import Dispatcher


def show(response: dict) -> None:
    print("   <-", json.dumps(response, sort_keys=True))


def main() -> None:
    dispatcher = Dispatcher()

    print("1. Two users open independent sessions:")
    show(dispatcher.handle({
        "cmd": "open", "session": "alice",
        "grammar": "START ::= B\nB ::= true\nB ::= false\nB ::= B or B",
    }))
    show(dispatcher.handle({
        "cmd": "open", "session": "bob",
        "grammar": "START ::= E\nE ::= n\nE ::= E + E",
    }))

    print("2. A parse is computed once, then served from the cache:")
    first = dispatcher.handle(
        {"cmd": "parse", "session": "alice", "tokens": "true or false"}
    )
    show(first)
    second = dispatcher.handle(
        {"cmd": "parse", "session": "alice", "tokens": "true or false"}
    )
    show(second)
    assert not first["cache"] and second["cache"]

    print("3. An edit bumps the version and evicts stale results:")
    show(dispatcher.handle(
        {"cmd": "add-rule", "session": "alice", "rule": "B ::= B and B"}
    ))
    third = dispatcher.handle(
        {"cmd": "parse", "session": "alice", "tokens": "true or false"}
    )
    show(third)
    assert not third["cache"] and third["version"] > first["version"]

    print("4. Bob's ambiguous grammar returns every tree, batched:")
    show(dispatcher.handle({
        "cmd": "batch-parse", "session": "bob",
        "inputs": ["n + n", "n + n + n", "n +"],
    }))

    print("5. Snapshot alice, restore as a warm third session:")
    snapshot = dispatcher.handle({"cmd": "snapshot", "session": "alice"})
    print(f"   (deterministic table shipped: {snapshot['deterministic']})")
    show(dispatcher.handle({
        "cmd": "restore", "session": "carol", "snapshot": snapshot["snapshot"],
    }))
    show(dispatcher.handle(
        {"cmd": "recognize", "session": "carol", "tokens": "true and true"}
    ))

    print("6. Service-wide metrics (Korp-style bookkeeping):")
    show(dispatcher.handle({"cmd": "metrics"}))


if __name__ == "__main__":
    main()
