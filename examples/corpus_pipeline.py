#!/usr/bin/env python3
"""The corpus service lifecycle, driven in-process.

A corpus is registered once with an immutable grammar, documents are
bulk-ingested (content-hashed, so re-ingest is a no-op), a streaming
batch parse drains them through the service, and Korp-style paginated
queries answer from the persistent hash-consed result store.  The
"restart" here is literal: we close the dispatcher, open a brand-new one
over the same corpus root, and show that the re-issued parse resumes
from the journal instead of re-parsing anything.  The same exchange
works over TCP via ``python -m repro serve --tcp ... --corpus-root DIR``
or the ``python -m repro corpus`` CLI verbs.

Run:  PYTHONPATH=src python examples/corpus_pipeline.py
"""

import json
import tempfile

from repro.service import Dispatcher

GRAMMAR = (
    "START ::= B\n"
    "B ::= true\n"
    "B ::= false\n"
    "B ::= B or true\n"
    "B ::= B or false"
)


def show(response: dict, *keys: str) -> None:
    picked = {key: response[key] for key in keys if key in response}
    print("   <-", json.dumps(picked or response, sort_keys=True))


def documents() -> list:
    docs = [
        {"name": f"bool-{value:02d}",
         "text": " or ".join(
             "true" if (value >> bit) & 1 else "false" for bit in range(5)
         )}
        for value in range(32)
    ]
    docs += [
        {"name": f"bad-{index}", "text": f"true or maybe {index}"}
        for index in range(4)
    ]
    return docs


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        dispatcher = Dispatcher(corpus_root=root)

        print("1. Register the corpus (idempotent, grammar is immutable):")
        show(dispatcher.handle(
            {"cmd": "corpus-create", "corpus": "bools", "grammar": GRAMMAR}
        ), "created", "corpus")

        print("2. Bulk ingest; a second ingest of the same batch is a no-op:")
        batch = documents()
        first = dispatcher.handle(
            {"cmd": "corpus-ingest", "corpus": "bools", "documents": batch}
        )
        show(first, "added", "duplicates", "documents")
        again = dispatcher.handle(
            {"cmd": "corpus-ingest", "corpus": "bools", "documents": batch}
        )
        show(again, "added", "duplicates", "documents")
        assert again["added"] == 0 and again["duplicates"] == len(batch)

        print("3. Batch-parse the corpus (wait=True joins the job):")
        parsed = dispatcher.handle(
            {"cmd": "corpus-parse", "corpus": "bools", "wait": True}
        )
        job = parsed["job"]
        show(job, "state", "done", "accepted", "rejected", "parsed_this_run")
        assert job["state"] == "done" and job["done"] == len(batch)

        print("4. The four rejected documents hash-cons to one payload:")
        status = dispatcher.handle(
            {"cmd": "corpus-status", "corpus": "bools"}
        )
        show(status["store"], "results", "dedup_hits")
        assert status["store"]["dedup_hits"] >= 3

        print("5. Korp-style queries: paginated match, cached on repeat:")
        query = {
            "cmd": "corpus-query", "corpus": "bools", "kind": "match",
            "nonterminal": "B", "page": 0, "page_size": 10,
        }
        page = dispatcher.handle(dict(query))
        show(page, "total", "page", "pages", "cache")
        cached = dispatcher.handle(dict(query))
        assert cached["cache"] is True and page["cache"] is False

        print("6. Rejected documents group by diagnostic signature:")
        errors = dispatcher.handle(
            {"cmd": "corpus-query", "corpus": "bools", "kind": "errors"}
        )
        show(errors, "accepted", "rejected", "total")
        assert errors["total"] == 1 and errors["rejected"] == 4

        print("7. 'Restart': a fresh dispatcher over the same root resumes")
        print("   from the journal — nothing is re-parsed:")
        dispatcher.close()
        dispatcher = Dispatcher(corpus_root=root)
        resumed = dispatcher.handle(
            {"cmd": "corpus-parse", "corpus": "bools", "wait": True}
        )
        show(resumed["job"], "state", "resumed", "parsed_this_run")
        assert resumed["job"]["resumed"] == len(batch)
        assert resumed["job"]["parsed_this_run"] == 0

        replay = dispatcher.handle(dict(query, cache=False))
        assert replay["total"] == page["total"]
        assert replay["hits"] == page["hits"]
        print("   ... and the queries answer identically from the store.")
        dispatcher.close()


if __name__ == "__main__":
    main()
