#!/usr/bin/env python3
"""Incremental re-parsing: an editor-style edit loop over the SDF corpus.

A client holding a large definition open re-submits it after every small
edit.  Re-parsing from scratch pays the full input each time; a
checkpointed parse (``Language.parse(..., checkpoint=True)``) lets every
follow-up ``Language.reparse(prev, start, end, replacement)`` resume from
the last stack-frontier checkpoint before the edit and stop as soon as
the frontier re-converges with the previous run — for a one-token change
in a 475-token SDF module that is typically a 2-token re-parse.

The loop below drives splice edits over the paper's own §7 workload (the
SDF-definition-of-SDF grammar and the corpus token streams), prints how
much of each input was actually re-parsed, and finishes with a grammar
edit — which invalidates every checkpoint via ``Grammar.subscribe`` and
falls back to a (correct) full parse.

Run:  python examples/incremental_editing.py
"""

from repro.api import Language
from repro.grammar.symbols import Terminal
from repro.sdf.corpus import corpus_tokens, modification_rule, sdf_grammar

ID = Terminal("ID")


def describe(outcome) -> str:
    reuse = outcome.reuse or {}
    if reuse.get("fallback"):
        return f"full re-parse ({reuse['fallback']})"
    note = (
        f"re-parsed {reuse.get('parsed_tokens')} of "
        f"{reuse.get('total_tokens')} tokens"
    )
    if reuse.get("converged_at") is not None:
        note += f", converged at token {reuse['converged_at']}"
    return note


def main() -> None:
    language = Language(sdf_grammar())
    corpus = corpus_tokens()

    print("edit loop over the SDF corpus (single-token LITERAL -> ID edits)")
    for name, tokens in corpus.items():
        # Recognition mode: checkpoints carry pure state frontiers, so
        # the re-parse converges with the previous run a couple of tokens
        # past the edit — this is the service's re-submission regime.
        outcome = language.recognize(tokens, checkpoint=True)
        print(f"\n{name}: {len(tokens)} tokens, accepted={outcome.accepted}")

        # Edit every LITERAL in turn (an editor walking through a file),
        # each time re-parsing the *previous* result incrementally.
        sites = [i for i, t in enumerate(tokens) if t.name == "LITERAL"][:4]
        for site in sites:
            outcome = language.reparse(outcome, site, site + 1, [ID])
            print(
                f"  edit [{site}:{site + 1}] -> ID: "
                f"accepted={outcome.accepted} ({describe(outcome)})"
            )

    # Tree-building parses checkpoint too; there the reuse is the skipped
    # prefix (a changed region keeps its differing subtree on the stack,
    # so the suffix re-reduces), and the trees match a scratch parse.
    tokens = corpus["Exam.sdf"]
    base = language.parse(tokens, checkpoint=True)
    site = max(i for i, t in enumerate(tokens) if t.name == "LITERAL")
    edited = language.reparse(base, site, site + 1, [ID])
    print(
        f"\ntree mode, edit at token {site} of {len(tokens)}: "
        f"accepted={edited.accepted} ({describe(edited)})"
    )

    # A grammar edit (the paper's §7 modification) invalidates every
    # outstanding checkpoint: the next reparse is a full parse again.
    tokens = corpus["exp.sdf"]
    base = language.parse(tokens, checkpoint=True)
    language.add_rule(modification_rule(language.grammar))
    stale = language.reparse(base, 0, 1, [ID])
    print(
        f"\nafter a grammar edit: accepted={stale.accepted} "
        f"({describe(stale)})"
    )


if __name__ == "__main__":
    main()
