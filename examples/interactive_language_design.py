#!/usr/bin/env python3
"""An interactive language-design session — the paper's motivating use.

*"When a language is being designed, its grammar is not yet completely
fixed.  After each change of the grammar, a (completely) new parser must
be generated, but there is no guarantee that it will be used sufficiently
often."*  (section 1)

A designer grows a little command language rule by rule, testing example
programs after every change.  Watch the work counters: each edit costs a
handful of state re-expansions, never a full regeneration — and parsing is
always available immediately.

Run:  python examples/interactive_language_design.py
"""

from repro import IPG
from repro.grammar.builders import GrammarBuilder


def check(ipg: IPG, program: str, expected: bool) -> None:
    verdict = ipg.recognize(program)
    marker = "ok " if verdict == expected else "?! "
    print(f"    {marker} {'accepts' if verdict else 'rejects'}: {program!r}")
    assert verdict == expected


def report(ipg: IPG, step: str) -> None:
    summary = ipg.summary()
    print(
        f"  [{step}] states={summary['states']} "
        f"complete={summary['complete']} "
        f"expansions so far={summary['expansions']}"
    )


def main() -> None:
    # Day one: commands are just 'go' and 'stop'.
    grammar = (
        GrammarBuilder()
        .rule("PROGRAM", ["CMD"])
        .rule("CMD", ["go"])
        .rule("CMD", ["stop"])
        .start("PROGRAM")
        .build()
    )
    ipg = IPG(grammar)
    print("v1: single commands")
    check(ipg, "go", True)
    check(ipg, "go go", False)
    report(ipg, "v1")

    # Day two: sequencing.
    print("\nv2: add sequencing  PROGRAM ::= PROGRAM ; PROGRAM")
    ipg.add_rule("PROGRAM ::= PROGRAM ; PROGRAM")
    check(ipg, "go ; stop", True)
    check(ipg, "go ; ; stop", False)
    report(ipg, "v2")

    # Day three: a numeric argument — needs a new sort.  The new sort is
    # named in 'sorts' because nothing defines N yet when the first rule
    # mentioning it arrives (SDF has the same declare-your-sorts rule).
    print("\nv3: add  CMD ::= turn N ,  N ::= 1 | 2 | 3")
    ipg.add_rule("CMD ::= turn N", sorts={"N"})
    ipg.add_rule("N ::= 1")
    ipg.add_rule("N ::= 2")
    ipg.add_rule("N ::= 3")
    check(ipg, "turn 2 ; go", True)
    check(ipg, "turn", False)
    report(ipg, "v3")

    # Day four: design reversal — 'stop' becomes 'halt'.
    print("\nv4: rename: delete CMD ::= stop, add CMD ::= halt")
    ipg.delete_rule("CMD ::= stop")
    ipg.add_rule("CMD ::= halt")
    check(ipg, "halt", True)
    check(ipg, "stop", False)
    check(ipg, "turn 3 ; halt", True)
    report(ipg, "v4")

    # Day five: loops, with bodies in brackets.
    print("\nv5: add  CMD ::= repeat N [ PROGRAM ]")
    ipg.add_rule("CMD ::= repeat N [ PROGRAM ]")
    check(ipg, "repeat 3 [ go ; turn 1 ]", True)
    check(ipg, "repeat [ go ]", False)
    check(ipg, "repeat 2 [ repeat 2 [ go ] ]", True)
    report(ipg, "v5")

    # Housekeeping: after many edits, reclaim orphaned table parts.
    removed = ipg.collect_garbage(force_sweep=True)
    print(f"\ngarbage collection reclaimed {removed} item sets")
    report(ipg, "final")
    check(ipg, "repeat 3 [ halt ]", True)


if __name__ == "__main__":
    main()
