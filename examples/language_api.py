#!/usr/bin/env python3
"""The unified ``repro.api`` surface: one Language object, every engine.

Shows the three pillars of the redesigned public API:

1. ``Language`` binds lexical syntax + grammar + parser: built from an
   SDF definition, ``parse`` takes raw program text — no manual lexing;
2. the engine registry: the same input driven through every registered
   parsing runtime (``lazy`` / ``compiled`` / ``dense`` / ``gss`` /
   ``earley``), selectable per call;
3. structured outcomes: rejected inputs carry a diagnostic with
   line/column and the *expected terminal set*, which tracks live
   grammar edits.

Run:  python examples/language_api.py
"""

from repro.api import Language, ScannerTokenizer, engine_descriptions, engines
from repro.sdf.corpus import EXP_SDF


def main() -> None:
    # --- pillar 1: from SDF text to parsing raw programs ----------------
    lang = Language.from_sdf(EXP_SDF)
    print("language:", lang)

    outcome = lang.parse("true and not false or true")
    print(f"\n'true and not false or true' accepted: {outcome.accepted}")
    print(f"derivations (ambiguous expression grammar): {outcome.ambiguity}")
    for bracket in outcome.brackets():
        print("  ", bracket)

    # --- pillar 3: diagnostics on rejection -----------------------------
    bad = lang.parse("true and\nnot and")
    print(f"\n'not and' rejected: {bad.diagnostic.describe()}")

    bad = lang.parse("true @ false")
    print(f"lexical garbage:    {bad.diagnostic.describe()}")

    # expected sets track MODIFY: make 'maybe' a boolean constant
    lang.add_rule('EXP ::= maybe')
    print("\nafter add_rule('EXP ::= maybe'):")
    print("  ", lang.parse("true and").diagnostic.describe())

    # --- pillar 2: the engine registry ----------------------------------
    print("\nengines:")
    for name, summary in engine_descriptions().items():
        print(f"  {name:10s} {summary}")

    sentence = "not true and not false"
    print(f"\n{sentence!r} through every engine:")
    for name in engines():
        result = lang.parse(sentence, engine=name)
        trees = f"{result.ambiguity} trees" if result.trees_built else "no trees"
        print(
            f"  {name:10s} accepted={result.accepted}  {trees}  "
            f"({result.elapsed * 1000:.2f} ms)"
        )

    # --- bonus: an ISG scanner derived from a plain BNF grammar ---------
    expr = Language.from_text(
        """
        E ::= E + T
        E ::= T
        T ::= T * F
        T ::= F
        F ::= n
        F ::= ( E )
        START ::= E
        """
    )
    expr.use_tokenizer(ScannerTokenizer.from_grammar(expr.grammar))
    print("\ngrammar-literal scanner: '(n+n)*n' accepted:",
          expr.parse("(n+n)*n").accepted)


if __name__ == "__main__":
    main()
