#!/usr/bin/env python3
"""Modular composition of parsers — the paper's future-work item, built.

Section 8: *"Although it would be possible to use the incremental
modification capability of IPG by adding the grammar of one module to the
grammar of the other..."*  — that is exactly what this example does: each
module is a rule set; importing a module streams its rules through
ADD-RULE, so the composed parser's table reuses everything already
generated for the importer.

The scenario mirrors the OBJ/ASF+SDF motivation (section 1): a base
expression language, a booleans module, and a lists module, each defining
its own syntax; importing a module extends the syntax of the importing
module.

Run:  python examples/modular_composition.py
"""

from repro import IPG
from repro.grammar.builders import GrammarBuilder


def module(name, build):
    """A 'module' is just a named rule set."""
    builder = GrammarBuilder()
    build(builder)
    return name, builder.build_rules()


NUMBERS = module(
    "Numbers",
    lambda b: (
        b.sort("EXPR")
        .rule("EXPR", ["num"])
        .rule("EXPR", ["EXPR", "plus", "EXPR"])
    ),
)

BOOLEANS = module(
    "Booleans",
    lambda b: (
        b.sort("EXPR")
        .rule("EXPR", ["tt"])
        .rule("EXPR", ["ff"])
        .rule("EXPR", ["EXPR", "eq", "EXPR"])
        .rule("EXPR", ["if", "EXPR", "then", "EXPR", "else", "EXPR"])
    ),
)

LISTS = module(
    "Lists",
    lambda b: (
        b.sort("EXPR")
        .rule("EXPR", ["nil"])
        .rule("EXPR", ["cons", "EXPR", "EXPR"])
        .rule("EXPR", ["head", "EXPR"])
    ),
)


def import_module(ipg: IPG, mod) -> None:
    name, rules = mod
    expansions_before = ipg.summary()["expansions"]
    added = sum(1 for rule in rules if ipg.add_rule(rule))
    print(f"  import {name}: {added} rules added "
          f"(no regeneration — expansions still "
          f"{ipg.summary()['expansions'] - expansions_before} extra)")


def main() -> None:
    # The importing module starts with just the top-level syntax.
    base = (
        GrammarBuilder()
        .sort("EXPR")
        .rule("PROGRAM", ["eval", "EXPR"])
        .start("PROGRAM")
        .build()
    )
    ipg = IPG(base)
    print("base module: PROGRAM ::= eval EXPR   (EXPR still empty)")
    print("  accepts 'eval num'?", ipg.recognize("eval num"))

    print("\nimporting modules one by one:")
    import_module(ipg, NUMBERS)
    assert ipg.recognize("eval num plus num")
    print("    'eval num plus num' ok")

    import_module(ipg, BOOLEANS)
    assert ipg.recognize("eval if tt then num else num plus num")
    print("    'eval if tt then num else num plus num' ok")

    import_module(ipg, LISTS)
    assert ipg.recognize("eval cons num nil")
    assert ipg.recognize("eval head cons tt nil")
    print("    list expressions ok")

    # cross-module mixing comes for free: one combined graph of item sets
    assert ipg.recognize("eval if num eq num then head nil else num")
    print("\ncross-module sentence accepted; final state:", ipg.summary())

    # un-importing works the same way (the asymmetry the paper notes:
    # removal must name the module's rules, composition is not tracked)
    name, rules = LISTS
    for rule in rules:
        ipg.delete_rule(rule)
    print(f"\nremoved {name}; 'eval cons num nil' accepted?",
          ipg.recognize("eval cons num nil"))
    assert not ipg.recognize("eval cons num nil")
    assert ipg.recognize("eval num plus num")


if __name__ == "__main__":
    main()
