"""A minimal socket client for the concurrent parse service.

Start the server::

    PYTHONPATH=src python -m repro serve --tcp 127.0.0.1:7654 --workers 4

then drive it::

    PYTHONPATH=src python examples/tcp_client.py --port 7654

The wire protocol is the same newline-delimited JSON served on stdin
(protocol v5), so anything that can open a socket is a client.  Requests
may be pipelined: responses always come back in request order on one
connection, so this client writes its whole script first and then reads
one response line per request.

Transient server conditions are retried: an ``overloaded`` answer (a
shard queue at its bound) or a ``shard-restarting`` answer (the
supervisor is respawning a crashed shard) is not a final result, so the
client re-sends those requests on a fresh connection after a jittered
backoff, honoring the server's ``retry_after_ms`` hint when present.
``shard-degraded`` is terminal and is never retried.

With no ``--requests FILE`` a small demo script runs: open a session,
parse twice (the second answer comes from the result cache or is
coalesced with the first), edit the grammar, parse again.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

DEMO = [
    {"cmd": "open", "session": "demo",
     "grammar": "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"},
    {"cmd": "parse", "session": "demo", "tokens": "true or false"},
    {"cmd": "parse", "session": "demo", "tokens": "true or false"},
    {"cmd": "add-rule", "session": "demo", "rule": "B ::= maybe"},
    {"cmd": "parse", "session": "demo", "tokens": "maybe or true"},
    {"cmd": "metrics"},
]

#: Error shapes worth re-sending; anything else is a final answer.
RETRYABLE_ERRORS = ("shard-restarting",)


def is_retryable(response: Dict[str, Any]) -> bool:
    error = response.get("error")
    if not isinstance(error, str):
        return False
    return error in RETRYABLE_ERRORS or response.get("overloaded") is True


def retry_delay_ms(
    responses: List[Dict[str, Any]], attempt: int, base_ms: float = 50.0
) -> float:
    """Jittered exponential backoff, floored at the server's hint."""
    hint = max(
        (
            r.get("retry_after_ms", 0)
            for r in responses
            if isinstance(r.get("retry_after_ms"), (int, float))
        ),
        default=0.0,
    )
    ceiling = min(5_000.0, base_ms * (2**attempt))
    return float(hint) + random.uniform(0.0, ceiling)


def exchange(
    host: str, port: int, lines: List[str], timeout: float = 30.0
) -> List[Optional[Dict[str, Any]]]:
    """Pipeline ``lines`` on one connection; one response per request.

    A response slot is ``None`` when the server closed before answering
    (e.g. a connection dropped mid-pipeline) — the caller treats those
    as retryable too.
    """
    responses: List[Optional[Dict[str, Any]]] = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            stream.write(line + "\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)  # tell the server we are done sending
        for _ in lines:
            response_line = stream.readline()
            if not response_line:
                responses.append(None)
                continue
            try:
                responses.append(json.loads(response_line))
            except json.JSONDecodeError:
                responses.append(None)  # torn frame: retry the request
    return responses


def run(
    host: str,
    port: int,
    lines: List[str],
    retries: int = 4,
    quiet: bool = False,
) -> Tuple[List[Optional[Dict[str, Any]]], int]:
    """Send every request, retrying transient failures; returns responses."""
    final: List[Optional[Dict[str, Any]]] = [None] * len(lines)
    todo = list(range(len(lines)))
    for attempt in range(retries + 1):
        try:
            answers = exchange(host, port, [lines[i] for i in todo])
        except ConnectionError:
            answers = [None] * len(todo)
        still: List[int] = []
        for index, answer in zip(todo, answers):
            final[index] = answer
            if answer is None or is_retryable(answer):
                still.append(index)
        if not still or attempt == retries:
            break
        got = [a for a in answers if isinstance(a, dict)]
        delay_ms = retry_delay_ms(got, attempt)
        if not quiet:
            print(
                f"# retrying {len(still)} request(s) in {delay_ms:.0f}ms "
                f"(attempt {attempt + 1}/{retries})",
                file=sys.stderr,
            )
        time.sleep(delay_ms / 1000.0)
        todo = still
    retried_out = sum(
        1 for r in final if r is None or is_retryable(r)
    )
    return final, retried_out


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--requests", metavar="FILE",
        help="newline-delimited JSON requests to send instead of the demo "
        "script ('-' for stdin)",
    )
    parser.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="re-send rounds for overloaded/shard-restarting answers "
        "(default: 4)",
    )
    options = parser.parse_args(argv)

    if options.requests is None:
        lines = [json.dumps(request) for request in DEMO]
    elif options.requests == "-":
        lines = [line.strip() for line in sys.stdin if line.strip()]
    else:
        with open(options.requests) as handle:
            lines = [line.strip() for line in handle if line.strip()]

    responses, unanswered = run(
        options.host, options.port, lines, retries=options.retries
    )
    errors = 0
    for response in responses:
        if response is None:
            print("error: server closed before answering", file=sys.stderr)
            errors += 1
            continue
        print(json.dumps(response, sort_keys=True))
        errors += "error" in response
    return 1 if errors or unanswered else 0


if __name__ == "__main__":
    raise SystemExit(main())
