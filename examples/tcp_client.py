"""A minimal socket client for the concurrent parse service.

Start the server::

    PYTHONPATH=src python -m repro serve --tcp 127.0.0.1:7654 --workers 4

then drive it::

    PYTHONPATH=src python examples/tcp_client.py --port 7654

The wire protocol is the same newline-delimited JSON served on stdin
(protocol v2), so anything that can open a socket is a client.  Requests
may be pipelined: responses always come back in request order on one
connection, so this client writes its whole script first and then reads
one response line per request.

With no ``--requests FILE`` a small demo script runs: open a session,
parse twice (the second answer comes from the result cache or is
coalesced with the first), edit the grammar, parse again.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import List

DEMO = [
    {"cmd": "open", "session": "demo",
     "grammar": "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"},
    {"cmd": "parse", "session": "demo", "tokens": "true or false"},
    {"cmd": "parse", "session": "demo", "tokens": "true or false"},
    {"cmd": "add-rule", "session": "demo", "rule": "B ::= maybe"},
    {"cmd": "parse", "session": "demo", "tokens": "maybe or true"},
    {"cmd": "metrics"},
]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--requests", metavar="FILE",
        help="newline-delimited JSON requests to send instead of the demo "
        "script ('-' for stdin)",
    )
    options = parser.parse_args(argv)

    if options.requests is None:
        lines = [json.dumps(request) for request in DEMO]
    elif options.requests == "-":
        lines = [line.strip() for line in sys.stdin if line.strip()]
    else:
        with open(options.requests) as handle:
            lines = [line.strip() for line in handle if line.strip()]

    with socket.create_connection((options.host, options.port), timeout=30) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        # Pipeline: write everything, then read one response per request.
        for line in lines:
            stream.write(line + "\n")
        stream.flush()
        sock.shutdown(socket.SHUT_WR)  # tell the server we are done sending
        errors = 0
        for _ in lines:
            response_line = stream.readline()
            if not response_line:
                print("error: server closed before answering", file=sys.stderr)
                return 1
            print(response_line.rstrip("\n"))
            errors += "error" in json.loads(response_line)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
