#!/usr/bin/env python3
"""Arbitrary context-free grammars: ambiguity as a feature.

IPG's runtime is a parallel LR parser, so — unlike Yacc — ambiguous
grammars are not an error.  Every parse of an ambiguous sentence comes
back as a tree; shared sub-derivations are represented once (hash-consed
forest, the paper's B. Lang footnote).

The classic ``E ::= E + E | n`` grammar yields Catalan-many parses, and
the user-defined-syntax languages of section 1 (OBJ, ASF/SDF) rely on
exactly this tolerance.

Run:  python examples/ambiguous_expressions.py
"""

from repro import IPG
from repro.runtime.forest import bracketed, node_count


def catalan(n: int) -> int:
    result = 1
    for i in range(n):
        result = result * 2 * (2 * i + 1) // (i + 2)
    return result


def main() -> None:
    ipg = IPG.from_text(
        """
        E ::= n
        E ::= E + E
        START ::= E
        """
    )

    print("all parses of n + n + n:")
    result = ipg.parse("n + n + n")
    for tree in result.trees:
        print("  ", bracketed(tree))

    print("\nparse counts follow the Catalan numbers:")
    for operators in range(1, 8):
        sentence = " ".join(["n"] + ["+ n"] * operators)
        result = ipg.parse(sentence)
        expected = catalan(operators)
        print(
            f"  {operators} operators: {len(result.trees):4d} parses "
            f"(Catalan {expected}), "
            f"max parallel parsers {result.stats.max_live_parsers}"
        )
        assert len(result.trees) == expected

    print("\nforest sharing (5 operators):")
    result = ipg.parse("n + n + n + n + n + n")
    seen = set()
    shared_nodes = sum(node_count(t, seen) for t in result.trees)
    unshared_nodes = sum(node_count(t) for t in result.trees)
    print(f"  nodes if each tree were private: {unshared_nodes}")
    print(f"  nodes actually allocated:        {shared_nodes}")

    print("\ndisambiguating by grammar refinement (left-associative):")
    ipg.delete_rule("E ::= E + E")
    ipg.add_rule("T ::= n")
    ipg.add_rule("E ::= E + T")
    ipg.add_rule("E ::= T")
    ipg.delete_rule("E ::= n")
    result = ipg.parse("n + n + n")
    print(f"  'n + n + n' now has {len(result.trees)} parse:")
    print("  ", bracketed(result.trees[0]))


if __name__ == "__main__":
    main()
