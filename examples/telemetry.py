#!/usr/bin/env python3
"""Telemetry: spans, the metrics registry, and the Prometheus exporter.

Drives the observability layer end to end at the library level:

1. trace a parse and print its span tree (tokenize/engine timings);
2. watch the laziness gauges (§5.2) move as the table grows on demand;
3. catch a slow request with the slow log;
4. render the whole registry in Prometheus text exposition format.

Run:  PYTHONPATH=src python examples/telemetry.py
"""

from repro import obs
from repro.api import Language

BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""


def main() -> None:
    language = Language.from_text(BOOLEANS)

    # --- 1. span trees: where did the time go? -------------------------
    obs.set_tracing(True)
    outcome = language.parse("true and false or true")
    print("accepted:", outcome.accepted)
    tree = obs.recent_spans(limit=1)[0]
    print(obs.render_span_tree(tree))

    # --- 2. the §5.2 laziness metrics move as the table grows ----------
    # (the service exports these as the repro.lazy.* gauges)
    from repro.core.metrics import table_fraction

    fresh = Language.from_text(BOOLEANS)

    def fraction() -> float:
        return table_fraction(fresh.generator.graph, fresh.grammar)

    fresh.parse("true and true")
    print(f"\ntable fraction after one sentence: {fraction():.0%}")
    fresh.parse("true or true or false and true")
    print(f"after a second sentence:           {fraction():.0%}")

    # --- 3. the slow log: span trees for outliers only -----------------
    obs.set_tracing(False)
    lines = []
    obs.set_slow_sink(lines.append)
    obs.set_slow_threshold(0.0)  # 0 ms: everything counts as slow
    language.parse("false or false")
    obs.set_slow_threshold(None)
    obs.set_slow_sink(None)
    print("\nslow log caught:")
    print(lines[0])

    # --- 4. the registry in Prometheus text exposition format ----------
    snapshot = obs.REGISTRY.snapshot()
    text = obs.render_prometheus(snapshot)
    wanted = ("repro_generator_states", "repro_parse_accepted", "repro_compiled")
    print("scrape excerpt:")
    for line in text.splitlines():
        if line.startswith(wanted) or any(
            line.startswith(f"# TYPE {name}") for name in wanted
        ):
            print(" ", line)
    print(f"  ... ({len(snapshot)} series total)")


if __name__ == "__main__":
    main()
