#!/usr/bin/env python3
"""SDF priorities and associativity, applied to the parse forest.

The parallel parser returns *every* parse; SDF's ``priorities`` section
and ``{left-assoc}``-style attributes then select the intended one.  This
example defines a calculator language entirely in SDF — lexical syntax,
context-free syntax, priorities — and runs the complete front end:

    SDF text ──► bootstrap parser ──► grammar + disambiguation filter
                                  └─► ISG scanner
    input ──► scanner ──► IPG (all parses) ──► filter (one parse)

Run:  python examples/priorities_and_associativity.py
"""

from repro import IPG
from repro.grammar.symbols import Terminal
from repro.lexing import scanner_from_sdf
from repro.runtime.forest import bracketed
from repro.sdf import normalize_with_metadata, parse_sdf

CALCULATOR = """
module Calc
begin
  lexical syntax
    sorts DIGIT, NUM
    layout WS
    functions
      [0-9]    -> DIGIT
      DIGIT+   -> NUM
      [\\ \\t]  -> WS
  context-free syntax
    sorts EXP
    priorities
      EXP "^" EXP -> EXP > EXP "*" EXP -> EXP,
      EXP "*" EXP -> EXP > EXP "+" EXP -> EXP
    functions
      NUM                -> EXP
      "(" EXP ")"        -> EXP
      EXP "^" EXP        -> EXP {right-assoc}
      EXP "*" EXP        -> EXP {left-assoc}
      EXP "+" EXP        -> EXP {left-assoc}
end Calc
"""


def main() -> None:
    definition = parse_sdf(CALCULATOR)
    grammar, metadata = normalize_with_metadata(definition)
    scanner = scanner_from_sdf(definition)
    ipg = IPG(grammar)
    print("calculator grammar:", len(grammar), "rules;", metadata.filter)

    def tokens_of_text(text):
        out = []
        for lexeme in scanner.scan(text):
            if lexeme.sort.startswith("lit:"):
                out.append(Terminal(lexeme.sort[4:]))
            else:
                out.append(Terminal(lexeme.sort))
        return out

    for text in ("1 + 2 * 3", "1 + 2 + 3", "2 ^ 3 ^ 4", "(1 + 2) * 3",
                 "1 + 2 * 3 ^ 4 + 5"):
        result = ipg.parse(tokens_of_text(text))
        survivors = metadata.filter.filter(result.trees)
        print(f"\n{text!r}: {len(result.trees)} parses, "
              f"{len(survivors)} after disambiguation")
        assert len(survivors) == 1, "priorities must fully disambiguate"
        print("  ", bracketed(survivors[0]))

    # the filter composes with incremental modification: add a '-' operator
    # at '+'-level associativity and priority
    print("\nadding subtraction incrementally...")
    from repro.grammar.rules import Rule
    from repro.grammar.symbols import NonTerminal

    EXP = NonTerminal("EXP")
    minus = Rule(EXP, [EXP, Terminal("-"), EXP])
    times = next(r for r in grammar.rules if Terminal("*") in r.rhs)
    ipg.add_rule(minus)
    metadata.filter.left_assoc(minus)
    metadata.filter.priority_chain([times], [minus])
    scanner.add_token("lit:-", __import__("repro.lexing", fromlist=["literal"]).literal("-"))

    result = ipg.parse(tokens_of_text("9 - 2 - 3 * 2"))
    survivors = metadata.filter.filter(result.trees)
    print(f"'9 - 2 - 3 * 2': {len(result.trees)} parses, "
          f"{len(survivors)} after disambiguation")
    assert len(survivors) == 1
    print("  ", bracketed(survivors[0]))


if __name__ == "__main__":
    main()
