#!/usr/bin/env python3
"""The paper's own experiment: SDF described in SDF, parsed by IPG.

Reproduces the full section-7 pipeline interactively:

* the SDF grammar is obtained by parsing the SDF definition of SDF
  (Appendix B) and normalizing it;
* the ISG scanner for SDF is generated from the same definition's lexical
  syntax — scanner and parser both come from one source document;
* the four corpus files are scanned and parsed; the §5.2 statistic (how
  much of the parse table was generated) is printed per file;
* the section-7 grammar modification is applied incrementally and the
  corpus is re-parsed.

Run:  python examples/sdf_self_definition.py
"""

from repro import IPG
from repro.grammar.symbols import Terminal
from repro.lexing import scanner_from_sdf
from repro.sdf import (
    CORPUS,
    modification_rule,
    sdf_definition,
    sdf_grammar,
)


def lexeme_terminal(lexeme) -> Terminal:
    if lexeme.sort.startswith("lit:"):
        return Terminal(lexeme.sort[4:])
    return Terminal(lexeme.sort)


def main() -> None:
    definition = sdf_definition()
    print(f"parsed module {definition.name!r}:")
    print(f"  lexical functions:      {len(definition.lexical.functions)}")
    print(f"  context-free functions: {len(definition.contextfree.functions)}")

    grammar = sdf_grammar()
    print(f"\nnormalized grammar: {len(grammar)} rules, "
          f"{len(grammar.terminals)} terminals, "
          f"{len(grammar.nonterminals)} non-terminals")

    scanner = scanner_from_sdf(definition)
    ipg = IPG(grammar)

    print("\nscanning + parsing the corpus (table generated on the fly):")
    for name, text in CORPUS.items():
        lexemes = scanner.scan(text)
        tokens = [lexeme_terminal(l) for l in lexemes]
        result = ipg.parse(tokens)
        assert result.accepted and len(result.trees) == 1
        print(
            f"  {name:10s} {len(tokens):4d} tokens -> accepted; "
            f"table now {ipg.table_fraction():5.0%} generated"
        )

    print("\nscanner laziness:", scanner.stats())

    print("\napplying the section-7 modification: "
          '"(" CF-ELEM+ ")?" -> CF-ELEM')
    rule = modification_rule(grammar)
    ipg.add_rule(rule)
    summary = ipg.summary()
    print(f"  after MODIFY: {summary['dirty']} dirty states, "
          f"{summary['complete']} still complete")

    for name, text in CORPUS.items():
        tokens = [lexeme_terminal(l) for l in scanner.scan(text)]
        assert ipg.parse(tokens).accepted
    print("  corpus re-parsed successfully (affected states re-expanded "
          "by need)")


if __name__ == "__main__":
    main()
