"""The measurement harness itself, exercised at toy scale.

The benchmark suite trusts ``run_protocol``; these tests make sure that
trust is earned — the protocol really runs all six phases, rejects broken
systems, and the three adapters faithfully wrap their engines.
"""

import pytest

from repro.bench.harness import (
    IPGSystem,
    PGSystem,
    PHASES,
    SYSTEMS,
    YaccSystem,
    run_protocol,
)
from repro.bench.report import render_figure_7_1
from repro.bench.workloads import (
    ambiguous_expression_grammar,
    ambiguous_sentence,
    booleans_workload,
    sdf_workload,
)


@pytest.fixture(scope="module")
def workload():
    return booleans_workload()


class TestProtocol:
    @pytest.mark.parametrize("system_name", list(SYSTEMS))
    def test_all_phases_timed(self, workload, system_name):
        result = run_protocol(SYSTEMS[system_name](), workload, "small")
        assert set(result.times) == set(PHASES)
        assert all(t >= 0 for t in result.times.values())

    def test_fresh_grammar_per_run(self, workload):
        # running twice must not double-apply the modification
        first = run_protocol(IPGSystem(), workload, "tiny")
        second = run_protocol(IPGSystem(), workload, "tiny")
        assert first.times.keys() == second.times.keys()

    def test_rejecting_system_raises(self, workload):
        class BrokenSystem(IPGSystem):
            def parse(self, tokens):
                return False

        with pytest.raises(AssertionError):
            run_protocol(BrokenSystem(), workload, "tiny")

    def test_render_produces_rows(self, workload):
        results = [
            run_protocol(SYSTEMS[name](), workload, "tiny")
            for name in SYSTEMS
        ]
        rendered = render_figure_7_1(results)
        assert "construct" in rendered
        assert "ipg" in rendered


class TestAdapters:
    def test_yacc_requires_construction(self):
        with pytest.raises(AssertionError):
            YaccSystem().parse([])

    def test_yacc_modify_reconstructs(self, workload):
        system = YaccSystem()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        table_before = system.parser
        system.modify(workload.modification(grammar))
        assert system.parser is not table_before  # fully rebuilt

    def test_pg_modify_reconstructs(self, workload):
        system = PGSystem()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        parser_before = system.parser
        system.modify(workload.modification(grammar))
        assert system.parser is not parser_before

    def test_ipg_modify_is_in_place(self, workload):
        system = IPGSystem()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        parser_before = system.parser
        tokens = workload.inputs["small"]
        assert system.parse(tokens)
        system.modify(workload.modification(grammar))
        assert system.parser is parser_before  # repaired, not rebuilt
        assert system.parse(tokens)

    def test_ipg_modified_language(self, workload):
        system = IPGSystem()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        system.modify(workload.modification(grammar))
        from repro.grammar.symbols import Terminal

        assert system.parse([Terminal("unknown")])


class TestWorkloads:
    def test_sdf_workload_shape(self):
        workload = sdf_workload()
        assert workload.input_names() == (
            "exp.sdf",
            "Exam.sdf",
            "SDF.sdf",
            "ASF.sdf",
        )
        grammar = workload.fresh_grammar()
        assert workload.modification(grammar).lhs.name == "CF-ELEM"

    def test_booleans_workload_sentences_grow(self):
        workload = booleans_workload()
        lengths = [len(v) for v in workload.inputs.values()]
        assert lengths == sorted(lengths)

    def test_ambiguous_workload(self):
        grammar = ambiguous_expression_grammar()
        sentence = ambiguous_sentence(3)
        assert len(sentence) == 7
        from repro.core.ipg import IPG

        assert len(IPG(grammar).parse(sentence).trees) == 5  # Catalan(3)
