"""Hot-path benchmark plumbing: floor checks and report shape."""

from repro.bench.hotpath import check_floor, measure_hotpath
from repro.bench.workloads import booleans_workload


def report_with(rates):
    return {
        "workload": "booleans",
        "inputs": {
            "small": {"tokens": 19, "tokens_per_sec": dict(rates)},
        },
    }


HEALTHY = {
    "lazy_baseline": 5_000.0,
    "lazy": 7_000.0,
    "compiled": 11_000.0,
    "table": 11_000.0,
}


class TestCheckFloor:
    def floor(self):
        return {
            "workload": "booleans",
            "max_regression": 3.0,
            "tokens_per_sec": {"small": dict(HEALTHY)},
            "relative": [
                {
                    "input": "small",
                    "numerator": "compiled",
                    "denominator": "lazy_baseline",
                    "min_ratio": 1.25,
                }
            ],
        }

    def test_healthy_run_passes(self):
        assert check_floor(report_with(HEALTHY), self.floor()) == []

    def test_uniformly_slower_machine_still_passes(self):
        # Absolute rates 2.5x below the reference floor but the same-run
        # ratio intact: a slower CI runner must not fail the check.
        slow = {tier: rate / 2.5 for tier, rate in HEALTHY.items()}
        assert check_floor(report_with(slow), self.floor()) == []

    def test_absolute_collapse_fails(self):
        crawl = {tier: rate / 10 for tier, rate in HEALTHY.items()}
        problems = check_floor(report_with(crawl), self.floor())
        assert any("below the floor" in p for p in problems)

    def test_relative_regression_fails_even_on_a_fast_machine(self):
        # compiled no faster than the baseline — the regression the job
        # exists to catch — on a machine fast enough to clear every
        # absolute floor.
        regressed = dict(HEALTHY)
        regressed["compiled"] = HEALTHY["lazy_baseline"] * 1.1
        problems = check_floor(report_with(regressed), self.floor())
        assert any("only 1.10x" in p for p in problems)

    def test_missing_input_reported(self):
        report = {"workload": "booleans", "inputs": {}}
        problems = check_floor(report, self.floor())
        assert problems and all("missing" in p for p in problems)

    def test_missing_tier_reported(self):
        rates = {k: v for k, v in HEALTHY.items() if k != "compiled"}
        problems = check_floor(report_with(rates), self.floor())
        assert any("compiled" in p for p in problems)


class TestMeasureHotpath:
    def test_report_shape_and_speedups(self):
        report = measure_hotpath(
            booleans_workload(), repeats=1, inputs=("tiny",)
        )
        assert report["workload"] == "booleans"
        assert set(report["inputs"]) == {"tiny"}
        rates = report["inputs"]["tiny"]["tokens_per_sec"]
        assert set(rates) == {
            "lazy_baseline", "lazy", "compiled", "table", "gss",
        }
        assert all(rate > 0 for rate in rates.values())
        assert "tiny" in report["speedup_compiled_vs_baseline"]
        assert "aggregate" in report["speedup_compiled_vs_baseline"]
        assert set(report["aggregate_tokens_per_sec"]) == set(rates)

    def test_tier_inputs_extend_a_single_tier(self):
        # The merged-stack gss tier runs the ambiguous medium input the
        # linear-stack tiers skip; its aggregate only counts what it ran.
        report = measure_hotpath(
            booleans_workload(),
            repeats=1,
            inputs=("tiny",),
            tier_inputs={"gss": ("tiny", "medium")},
        )
        assert set(report["inputs"]) == {"tiny", "medium"}
        assert set(report["inputs"]["medium"]["tokens_per_sec"]) == {"gss"}
        assert report["inputs"]["medium"]["tokens_per_sec"]["gss"] > 0
        assert set(report["inputs"]["tiny"]["tokens_per_sec"]) == {
            "lazy_baseline", "lazy", "compiled", "table", "gss",
        }
