"""Report rendering and shape checking, on synthetic results."""

import pytest

from repro.bench.harness import PHASES, ProtocolResult
from repro.bench.report import (
    Capability,
    check_figure_7_1_shape,
    render_figure_7_1,
)


def result(system, input_name, **overrides):
    times = {phase: 0.010 for phase in PHASES}
    times.update(overrides)
    return ProtocolResult(system, input_name, times)


def good_grid():
    rows = []
    for input_name in ("a.sdf", "b.sdf"):
        rows.append(
            result("yacc", input_name, construct=0.100, modify=0.100)
        )
        rows.append(result("pg", input_name, construct=0.040, modify=0.040))
        rows.append(
            result(
                "ipg",
                input_name,
                construct=0.0001,
                modify=0.0002,
                parse1=0.020,
                parse2=0.010,
            )
        )
    return rows


class TestShapeCheck:
    def test_good_grid_passes(self):
        assert check_figure_7_1_shape(good_grid()) == []

    def test_slow_ipg_construction_flagged(self):
        rows = good_grid()
        rows[2].times["construct"] = 0.099  # nearly Yacc's
        problems = check_figure_7_1_shape(rows)
        assert any("construct" in p for p in problems)

    def test_slow_ipg_modify_flagged(self):
        rows = good_grid()
        rows[2].times["modify"] = 0.090
        problems = check_figure_7_1_shape(rows)
        assert any("modify" in p for p in problems)

    def test_missing_lazy_warmup_flagged(self):
        rows = good_grid()
        for row in rows:
            if row.system == "ipg":
                row.times["parse1"] = 0.001
                row.times["parse2"] = 0.010
        problems = check_figure_7_1_shape(rows)
        assert any("parse1" in p for p in problems)

    def test_incomplete_grid_tolerated(self):
        lone = result("ipg", "x.sdf", parse1=0.020, parse2=0.010)
        assert check_figure_7_1_shape([lone]) == []


class TestRendering:
    def test_all_rows_and_phases_present(self):
        rendered = render_figure_7_1(good_grid())
        for needle in ("yacc", "pg", "ipg", "construct", "modify", "total"):
            assert needle in rendered

    def test_protocol_result_total(self):
        row = result("ipg", "x.sdf")
        assert row.total() == pytest.approx(0.010 * len(PHASES))


class TestCapabilityMarks:
    def test_marks_thresholds(self):
        capability = Capability("X")
        capability.handles_ambiguity = True
        capability.handles_left_recursion = True
        capability.parse_seconds = 0.010
        capability.modify_ratio = 0.01
        capability.composes = True
        marks = capability.marks(baseline_seconds=0.010)
        assert marks == {
            "powerful": "++",
            "fast": "++",
            "flexible": "++",
            "modular": "+",
        }

    def test_partial_power(self):
        capability = Capability("X")
        capability.handles_ambiguity = True
        assert capability.marks(1.0)["powerful"] == "+"

    def test_slow_row_gets_no_fast_mark(self):
        capability = Capability("X")
        capability.parse_seconds = 10.0
        assert capability.marks(baseline_seconds=0.001)["fast"] == ""

    def test_unmeasured_row_blank(self):
        capability = Capability("X")
        marks = capability.marks(1.0)
        assert marks == {
            "powerful": "",
            "fast": "",
            "flexible": "",
            "modular": "",
        }
