"""End-to-end integration: the ASF+SDF editor loop of section 1.

*"The universal syntax-directed editor of this environment is
parametrized with a syntax written in SDF, and uses ISG/IPG as its
parsing component."*  This test drives the full loop:

    SDF definition text
        → bootstrap parse → AST
        → normalize        → grammar (+ disambiguation metadata)
        → ISG bridge       → scanner (lazy DFA)
        → IPG              → parser (lazy LR(0) table)
    then *edits the language definition* and keeps parsing, with both the
    scanner and the parser updated incrementally.
"""

import pytest

from repro.core.ipg import IPG
from repro.grammar.symbols import Terminal
from repro.lexing import literal, scanner_from_sdf
from repro.runtime.forest import bracketed
from repro.sdf import normalize_with_metadata, parse_sdf, rule_for_function
from repro.sdf.ast import CfLiteral, CfSort, Function

LANGUAGE_V1 = """
module While
begin
  lexical syntax
    sorts LETTER, ID, DIGIT, NUM
    layout WS
    functions
      [a-z]    -> LETTER
      LETTER+  -> ID
      [0-9]    -> DIGIT
      DIGIT+   -> NUM
      [\\ \\t\\n] -> WS
  context-free syntax
    sorts PROGRAM, STMT, EXPR
    functions
      STMT                          -> PROGRAM
      PROGRAM ";" PROGRAM           -> PROGRAM {right-assoc}
      ID ":=" EXPR                  -> STMT
      "skip"                        -> STMT
      "while" EXPR "do" STMT "od"   -> STMT
      ID                            -> EXPR
      NUM                           -> EXPR
      EXPR "<" EXPR                 -> EXPR
end While
"""


class EditorSession:
    """The glue an editor would own: scanner + parser + metadata."""

    def __init__(self, definition_text: str) -> None:
        self.definition = parse_sdf(definition_text)
        self.grammar, self.metadata = normalize_with_metadata(self.definition)
        self.scanner = scanner_from_sdf(self.definition)
        self.ipg = IPG(self.grammar)

    def tokens(self, program: str):
        out = []
        for lexeme in self.scanner.scan(program):
            if lexeme.sort.startswith("lit:"):
                out.append(Terminal(lexeme.sort[4:]))
            else:
                out.append(Terminal(lexeme.sort))
        return out

    def parse(self, program: str):
        result = self.ipg.parse(self.tokens(program))
        trees = self.metadata.filter.filter(result.trees)
        return result.accepted, trees

    def add_function(self, function: Function) -> None:
        """A language-definition edit: one new SDF function."""
        rule = rule_for_function(
            self.grammar, function, self.definition.contextfree.sorts
        )
        self.ipg.add_rule(rule)
        # new keywords must outrank the identifier sort on length ties
        anchor = next(
            (s for s in self.scanner.sorts if not s.startswith("lit:")), None
        )
        for elem in function.elems:
            if isinstance(elem, CfLiteral):
                self.scanner.add_token(
                    f"lit:{elem.text}", literal(elem.text), before=anchor
                )


@pytest.fixture()
def session():
    return EditorSession(LANGUAGE_V1)


class TestProgramEditing:
    def test_programs_parse(self, session):
        accepted, trees = session.parse("x := 1 ; while x < 10 do skip od")
        assert accepted
        assert len(trees) == 1

    def test_bad_programs_rejected(self, session):
        accepted, _ = session.parse("while do od")
        assert not accepted

    def test_right_assoc_sequencing(self, session):
        accepted, trees = session.parse("skip ; skip ; skip")
        assert accepted
        assert len(trees) == 1  # {right-assoc} disambiguates
        assert "PROGRAM(PROGRAM(STMT(skip)) ; PROGRAM(PROGRAM" in bracketed(
            trees[0]
        )

    def test_table_grows_lazily(self, session):
        before = session.ipg.summary()["complete"]
        session.parse("skip")
        mid = session.ipg.summary()["complete"]
        session.parse("while x < y do x := y od")
        after = session.ipg.summary()["complete"]
        assert before == 0 < mid <= after


class TestLanguageEditing:
    def test_add_statement_form(self, session):
        accepted, _ = session.parse("if x < y then skip else skip fi")
        assert not accepted
        session.add_function(
            Function(
                elems=(
                    CfLiteral("if"),
                    CfSort("EXPR"),
                    CfLiteral("then"),
                    CfSort("STMT"),
                    CfLiteral("else"),
                    CfSort("STMT"),
                    CfLiteral("fi"),
                ),
                sort="STMT",
            )
        )
        accepted, trees = session.parse("if x < y then skip else x := 1 fi")
        assert accepted and len(trees) == 1

    def test_edit_keeps_warm_regions(self, session):
        session.parse("x := 1 ; skip")
        expansions_before = session.ipg.summary()["expansions"]
        session.add_function(
            Function(elems=(CfLiteral("abort"),), sort="STMT")
        )
        # the edit itself expands nothing (lazy re-expansion)
        assert session.ipg.summary()["expansions"] == expansions_before
        accepted, _ = session.parse("abort ; x := 2")
        assert accepted

    def test_old_programs_survive_edits(self, session):
        program = "while x < y do x := y od"
        assert session.parse(program)[0]
        session.add_function(
            Function(elems=(CfLiteral("abort"),), sort="STMT")
        )
        assert session.parse(program)[0]

    def test_scanner_learns_new_keywords(self, session):
        with pytest.raises(Exception):
            session.tokens("x ?? y")
        session.add_function(
            Function(
                elems=(CfSort("EXPR"), CfLiteral("??"), CfSort("EXPR")),
                sort="EXPR",
            )
        )
        # '??' is not in the lexer's alphabet handling... but '??' is two
        # chars the scanner now has a literal for
        assert session.parse("x := y ?? z")[0]
