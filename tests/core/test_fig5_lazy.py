"""E4 — section 5: lazy parser generation on the booleans grammar.

Fig. 5.1(a): after GENERATE-PARSER the graph is just the initial start
state.  Fig. 5.1(b): the first ACTION call expands it, creating initial
states 1, 2, 3.  Fig. 5.2: after parsing 'true and true' the graph has the
accept path expanded but the 'or'/'false' regions untouched.
"""

import pytest

from repro.core.lazy import LazyGenerator
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.parallel import PoolParser

from ..conftest import toks

B = NonTerminal("B")
true, false = Terminal("true"), Terminal("false")
and_, or_ = Terminal("and"), Terminal("or")


@pytest.fixture()
def generator(booleans):
    return LazyGenerator(booleans)


def states_by_uid(generator):
    return {s.uid: s for s in generator.graph.states()}


class TestGeneratePhase:
    def test_construction_creates_only_the_start_state(self, generator):
        assert len(generator.graph) == 1
        assert generator.graph.start.is_initial

    def test_fraction_expanded_starts_at_zero(self, generator):
        assert generator.fraction_expanded() == 0.0


class TestFirstActionCall(object):
    def test_expands_start_state_only(self, generator, booleans):
        control = generator.control()
        actions = control.action(generator.graph.start, true)
        # Fig. 5.1(b): start is complete; 1, 2, 3 exist but are initial
        assert generator.graph.start.is_complete
        assert len(generator.graph) == 4
        others = [s for s in generator.graph.states() if s.uid != 0]
        assert all(s.is_initial for s in others)
        # the action returned is the shift of 'true' into state 2
        assert len(actions) == 1

    def test_action_on_complete_state_does_not_reexpand(self, generator):
        control = generator.control()
        control.action(generator.graph.start, true)
        expansions = generator.graph.stats.expansions
        control.action(generator.graph.start, false)
        assert generator.graph.stats.expansions == expansions


class TestFig52:
    """The graph after parsing 'true and true'."""

    @pytest.fixture()
    def parsed(self, generator, booleans):
        parser = PoolParser(generator.control(), booleans)
        assert parser.parse(toks("true and true")).accepted
        return generator

    def test_seven_states_exist(self, parsed):
        # Fig. 5.2 shows states 0-6; state 7 (via 'or') was never created
        assert len(parsed.graph) == 7

    def test_or_and_false_regions_untouched(self, parsed):
        states = states_by_uid(parsed)
        # state 3 is 'false' (created but never entered: still initial),
        # state 5 is the 'or' state (same)
        assert states[3].is_initial
        assert states[5].is_initial

    def test_and_path_complete(self, parsed):
        states = states_by_uid(parsed)
        for uid in (0, 1, 2, 4, 6):
            assert states[uid].is_complete, f"state {uid} should be complete"

    def test_sentences_in_the_warm_region_cost_no_expansion(self, parsed, booleans):
        expansions = parsed.graph.stats.expansions
        parser = PoolParser(parsed.control(), booleans)
        assert parser.parse(toks("true and true and true")).accepted
        assert parsed.graph.stats.expansions == expansions

    def test_new_region_expands_on_demand(self, parsed, booleans):
        expansions = parsed.graph.stats.expansions
        parser = PoolParser(parsed.control(), booleans)
        assert parser.parse(toks("false or true")).accepted
        assert parsed.graph.stats.expansions > expansions


class TestEquivalenceWithConventional:
    def test_forced_lazy_graph_equals_conventional(self, booleans):
        from repro.lr.generator import ConventionalGenerator

        lazy = LazyGenerator(booleans)
        lazy.force()
        conventional = ConventionalGenerator(booleans.copy())
        conventional.generate()

        def shape(graph):
            return {
                frozenset(map(str, s.kernel)): (
                    {
                        str(symbol): frozenset(
                            map(str, getattr(target, "kernel", ["accept"]))
                        )
                        for symbol, target in s.transitions.items()
                    },
                    frozenset(map(str, s.reductions)),
                )
                for s in graph.states()
            }

        assert shape(lazy.graph) == shape(conventional.graph)

    def test_acceptance_matches_conventional(self, booleans):
        from repro.lr.generator import ConventionalGenerator

        lazy_parser = PoolParser(LazyGenerator(booleans).control(), booleans)
        conventional_parser = PoolParser(
            ConventionalGenerator(booleans.copy()).generate(), booleans
        )
        for sentence in (
            "true",
            "true and false",
            "true or false and true",
            "true or",
            "and",
            "",
        ):
            assert lazy_parser.recognize(toks(sentence)) == (
                conventional_parser.recognize(toks(sentence))
            ), sentence
