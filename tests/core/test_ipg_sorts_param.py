"""The sorts= escape hatch for forward-referenced non-terminals."""

import pytest

from repro.core.ipg import IPG
from repro.grammar.symbols import Terminal


@pytest.fixture()
def ipg():
    return IPG.from_text(
        """
        CMD ::= go
        START ::= CMD
        """
    )


class TestSortsParameter:
    def test_forward_reference_without_sorts_is_terminal(self, ipg):
        ipg.add_rule("CMD ::= turn N")
        # N became a terminal: the literal token 'N' is required
        assert ipg.recognize([Terminal("turn"), Terminal("N")])

    def test_forward_reference_with_sorts_is_nonterminal(self, ipg):
        ipg.add_rule("CMD ::= turn N", sorts={"N"})
        ipg.add_rule("N ::= 1")
        assert ipg.recognize("turn 1")
        assert not ipg.recognize("turn N")

    def test_sorts_accepted_on_delete(self, ipg):
        ipg.add_rule("CMD ::= turn N", sorts={"N"})
        ipg.add_rule("N ::= 1")
        assert ipg.delete_rule("CMD ::= turn N", sorts={"N"})
        assert not ipg.recognize("turn 1")

    def test_known_nonterminals_do_not_need_sorts(self, ipg):
        ipg.add_rule("CMD ::= CMD then CMD")
        assert ipg.recognize("go then go")
