"""The IPG facade: the user-level API of the whole system."""

import pytest

from repro.core.ipg import IPG
from repro.grammar.grammar import GrammarError
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal

BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""


@pytest.fixture()
def ipg():
    return IPG.from_text(BOOLEANS)


class TestParsing:
    def test_parse_string_input(self, ipg):
        result = ipg.parse("true or false")
        assert result.accepted
        assert len(result.trees) == 1

    def test_parse_terminal_list(self, ipg):
        result = ipg.parse([Terminal("true"), Terminal("or"), Terminal("false")])
        assert result.accepted

    def test_mixed_token_input(self, ipg):
        assert ipg.parse(["true", Terminal("and"), "false"]).accepted

    def test_bad_token_type_rejected(self, ipg):
        with pytest.raises(TypeError):
            ipg.parse([42])  # type: ignore[list-item]

    def test_empty_string_input_rejected(self, ipg):
        # "" / blank input is almost always a missing argument, not the
        # empty sentence; both string forms must raise, the explicit
        # empty sequence must keep meaning the empty sentence.
        from repro.runtime.errors import ParseError

        with pytest.raises(ParseError, match="empty input"):
            ipg.parse("")
        with pytest.raises(ParseError, match="empty input"):
            ipg.recognize("   \t ")
        assert not ipg.recognize([])  # booleans has no empty sentence

    def test_recognize(self, ipg):
        assert ipg.recognize("true and true")
        assert not ipg.recognize("true and")

    def test_recognize_gss_agrees(self, ipg):
        for sentence in ("true", "true or false", "or", []):
            assert ipg.recognize(sentence) == ipg.recognize_gss(sentence)

    def test_trace_support(self, ipg):
        from repro.runtime.trace import Trace

        trace = Trace()
        ipg.parse("true", trace=trace)
        assert len(trace) > 0


class TestEditing:
    def test_add_rule_text(self, ipg):
        assert ipg.add_rule("B ::= unknown") is True
        assert ipg.recognize("unknown or true")

    def test_add_rule_object(self, ipg):
        rule = Rule(NonTerminal("B"), [Terminal("nil")])
        assert ipg.add_rule(rule)
        assert ipg.recognize("nil")

    def test_add_existing_rule_is_noop(self, ipg):
        assert ipg.add_rule("B ::= true") is False

    def test_delete_rule_text(self, ipg):
        assert ipg.delete_rule("B ::= false")
        assert not ipg.recognize("false")

    def test_rule_text_resolves_known_nonterminals(self, ipg):
        ipg.add_rule("B ::= not B")
        assert ipg.recognize("not true")
        assert ipg.recognize("not not false")

    def test_rule_text_new_lhs(self, ipg):
        ipg.add_rule("C ::= maybe")
        # C is unreachable but legal; language unchanged
        assert ipg.recognize("true")
        assert not ipg.recognize("maybe")

    def test_malformed_rule_text_rejected(self, ipg):
        with pytest.raises(GrammarError):
            ipg.add_rule("B -> true")
        with pytest.raises(GrammarError):
            ipg.add_rule("::= x")

    def test_epsilon_rule_text(self, ipg):
        ipg.add_rule("B ::= ε")
        assert ipg.recognize([])

    def test_epsilon_must_be_whole_body(self, ipg):
        with pytest.raises(GrammarError):
            ipg.add_rule("B ::= true ε false")
        with pytest.raises(GrammarError):
            ipg.add_rule("B ::= ε ε")


class TestIntrospection:
    def test_summary_counts(self, ipg):
        before = ipg.summary()
        assert before["states"] == 1  # just the initial start state
        ipg.parse("true and true")
        after = ipg.summary()
        assert after["complete"] > 0
        assert after["states"] > before["states"]

    def test_table_fraction_grows_with_coverage(self, ipg):
        ipg.parse("true and true")
        partial = ipg.table_fraction()
        ipg.parse("false or false")
        fuller = ipg.table_fraction()
        assert 0 < partial < fuller <= 1.0

    def test_repr(self, ipg):
        assert "IPG(" in repr(ipg)

    def test_collect_garbage_roundtrip(self, ipg):
        ipg.parse("true and true or false")
        ipg.add_rule("B ::= B xor B")
        ipg.parse("true xor true")
        removed = ipg.collect_garbage(force_sweep=True)
        assert removed >= 0
        assert ipg.recognize("true xor false and true")


class TestConstructors:
    def test_from_rules(self):
        rules = [
            Rule(NonTerminal("B"), [Terminal("x")]),
            Rule(NonTerminal("START"), [NonTerminal("B")]),
        ]
        ipg = IPG.from_rules(rules)
        assert ipg.recognize("x")

    def test_gc_flag(self):
        ipg = IPG.from_text(BOOLEANS, gc=False)
        assert ipg.generator.collector is None
        ipg = IPG.from_text(BOOLEANS, gc=True)
        assert ipg.generator.collector is not None


class TestVersion:
    def test_version_bumps_on_modify_only(self):
        ipg = IPG.from_text(BOOLEANS)
        before = ipg.version
        ipg.parse("true and true")
        assert ipg.version == before            # parsing never bumps
        assert ipg.add_rule("B ::= maybe")
        assert ipg.version == before + 1
        assert not ipg.add_rule("B ::= maybe")  # no-op edit
        assert ipg.version == before + 1
        assert ipg.delete_rule("B ::= maybe")
        assert ipg.version == before + 2
