"""E9 — Appendix A: GOTO is always called on a complete set of items.

The proof covers LR-PARSE and PAR-PARSE; the probe below turns any
violation into an exception, and we drive both runtimes over lazy controls
(where an incomplete state *could* plausibly leak into GOTO if the
implementation were wrong) across the example grammars and edit sessions.
"""

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.core.lazy import LazyGenerator
from repro.core.metrics import AppendixAViolation, ControlProbe
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.lr.generator import GotoOnNonCompleteState
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.parallel import PoolParser

from ..conftest import toks


class TestInvariantHolds:
    def test_pool_parser_on_lazy_control(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        parser = PoolParser(probe, booleans)
        for sentence in ("true and true", "false or false", "true or"):
            parser.parse(toks(sentence))
        assert probe.goto_calls > 0

    def test_simple_parser_on_lazy_control(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        parser = SimpleLRParser(probe, booleans)
        assert parser.parse(toks("true and false")).accepted
        assert probe.goto_calls > 0

    def test_through_edit_sessions(self, booleans):
        generator = IncrementalGenerator(booleans, gc=True)
        probe = ControlProbe(generator.control)
        parser = PoolParser(probe, booleans)
        B = NonTerminal("B")
        assert parser.parse(toks("true and true")).accepted
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("unknown or true")).accepted
        generator.delete_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("true or true and false")).accepted

    def test_on_epsilon_grammar(self, epsilon_grammar):
        generator = LazyGenerator(epsilon_grammar)
        probe = ControlProbe(generator.control())
        parser = PoolParser(probe, epsilon_grammar)
        assert parser.parse(toks("a b c")).accepted
        assert parser.parse(toks("b")).accepted


class TestViolationsAreLoud:
    def test_probe_raises_on_initial_state(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        with pytest.raises(AppendixAViolation):
            probe.goto(generator.graph.start, NonTerminal("B"))

    def test_graph_control_raises_too(self, booleans):
        generator = LazyGenerator(booleans)
        control = generator.control()
        with pytest.raises(GotoOnNonCompleteState):
            control.goto(generator.graph.start, NonTerminal("B"))

    def test_conventional_action_rejects_unexpanded_state(self, booleans):
        from repro.lr.generator import GraphControl
        from repro.lr.graph import ItemSetGraph

        graph = ItemSetGraph(booleans)
        control = GraphControl(graph)
        with pytest.raises(GotoOnNonCompleteState):
            control.action(graph.start, Terminal("true"))
