"""E6 — section 6: incremental parser generation.

Covers the three worked examples:

* Fig. 6.1: adding ``B ::= unknown`` to the booleans — transitions are
  added, nothing else changes;
* Fig. 6.4/6.5: MODIFY makes states 0, 4, 5 initial (they have a
  transition on B); re-expanding 0 reconnects 1, 2, 3 and creates the new
  'unknown' state;
* Fig. 6.2/6.3: the a-b/c-b grammar where adding ``A ::= b`` *changes* an
  existing kernel's successor — the old graph is not a subgraph of the new
  one, and MODIFY still gets it right.
"""

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.parallel import PoolParser

from ..conftest import toks

B = NonTerminal("B")
A = NonTerminal("A")


@pytest.fixture()
def warm_booleans(booleans):
    """An incremental generator whose graph is fully warmed up."""
    generator = IncrementalGenerator(booleans, gc=False)
    parser = PoolParser(generator.control, booleans)
    for sentence in ("true and true", "false or false"):
        assert parser.parse(toks(sentence)).accepted
    return generator, parser


class TestFig64Invalidation:
    def test_states_with_b_transition_are_invalidated(self, warm_booleans, booleans):
        generator, _parser = warm_booleans
        assert all(s.is_complete for s in generator.graph.states())
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        pending = {s.uid for s in generator.graph.pending_states()}
        # Fig. 6.4: "the sets of items 0, 4, and 5 are made initial,
        # because they had a transition for 'B'"
        assert pending == {0, 4, 5}

    def test_other_states_untouched(self, warm_booleans):
        generator, _parser = warm_booleans
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        states = {s.uid: s for s in generator.graph.states()}
        for uid in (1, 2, 3, 6, 7):
            assert states[uid].is_complete


class TestFig65Reexpansion:
    def test_reexpansion_reconnects_old_states(self, warm_booleans, booleans):
        generator, parser = warm_booleans
        count_before = len(generator.graph)
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("true and unknown")).accepted
        states = {s.uid: s for s in generator.graph.states()}
        # 0 was re-expanded and points at the same objects 1, 2, 3
        assert states[0].transitions[B] is states[1]
        assert states[0].transitions[Terminal("true")] is states[2]
        assert states[0].transitions[Terminal("false")] is states[3]
        # exactly one new state: the 'unknown' leaf (Fig. 6.5's state 8)
        new_states = [s for s in generator.graph.states() if s.uid >= count_before]
        assert len(new_states) == 1
        assert str(next(iter(new_states[0].kernel))) == "B ::= unknown •"

    def test_language_extended(self, warm_booleans):
        generator, parser = warm_booleans
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("unknown")).accepted
        assert parser.parse(toks("unknown or true")).accepted
        assert not parser.parse(toks("mystery")).accepted

    def test_old_language_still_accepted(self, warm_booleans):
        generator, parser = warm_booleans
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("true and false or true")).accepted


class TestDeletion:
    def test_deleting_restores_old_language(self, warm_booleans):
        generator, parser = warm_booleans
        rule = Rule(B, [Terminal("unknown")])
        generator.add_rule(rule)
        assert parser.parse(toks("unknown")).accepted
        generator.delete_rule(rule)
        assert not parser.parse(toks("unknown")).accepted
        assert parser.parse(toks("true and true")).accepted

    def test_deleting_core_rule(self, warm_booleans, booleans):
        generator, parser = warm_booleans
        generator.delete_rule(Rule(B, [Terminal("false")]))
        assert not parser.parse(toks("false")).accepted
        assert parser.parse(toks("true")).accepted

    def test_delete_then_readd_roundtrip(self, warm_booleans):
        generator, parser = warm_booleans
        rule = Rule(B, [Terminal("true")])
        generator.delete_rule(rule)
        assert not parser.parse(toks("true or true")).accepted
        generator.add_rule(rule)
        assert parser.parse(toks("true or true")).accepted


class TestFig62Counterexample:
    """Adding ``A ::= b``: the old graph is NOT a subgraph of the new."""

    @pytest.fixture()
    def warm(self, fig62):
        generator = IncrementalGenerator(fig62, gc=False)
        parser = PoolParser(generator.control, fig62)
        assert parser.parse(toks("a b")).accepted
        assert parser.parse(toks("c b")).accepted
        return generator, parser

    def test_only_a_transition_states_invalidated(self, warm):
        generator, _parser = warm
        invalidated_before = generator.invalidated_states
        generator.add_rule(Rule(A, [Terminal("b")]))
        # exactly the states with a transition on A (the paper: set 3)
        pending = generator.graph.pending_states()
        assert all(
            A in (s.old_transitions or {}) or not s.is_dirty for s in pending
        )
        assert generator.invalidated_states > invalidated_before

    def test_merged_kernel_state_created(self, warm, fig62):
        generator, parser = warm
        generator.add_rule(Rule(A, [Terminal("b")]))
        assert parser.parse(toks("a b")).accepted
        # Fig. 6.3: the transition on b now reaches a state with the merged
        # kernel {B ::= b •, A ::= b •}
        merged = [
            s
            for s in generator.graph.states()
            if {str(i) for i in s.kernel} == {"B ::= b •", "A ::= b •"}
        ]
        assert len(merged) == 1

    def test_old_b_state_survives(self, warm):
        generator, parser = warm
        before = {
            s.uid
            for s in generator.graph.states()
            if {str(i) for i in s.kernel} == {"B ::= b •"}
        }
        generator.add_rule(Rule(A, [Terminal("b")]))
        assert parser.parse(toks("c b")).accepted
        after = {
            s.uid
            for s in generator.graph.states()
            if {str(i) for i in s.kernel} == {"B ::= b •"}
        }
        # "Set of items 7 and the transition of 2 to 7 are not affected"
        assert before == after

    def test_language_unchanged_by_redundant_rule(self, warm):
        # A ::= b makes 'a b' derivable two ways but adds no sentences
        generator, parser = warm
        generator.add_rule(Rule(A, [Terminal("b")]))
        assert parser.parse(toks("a b")).accepted
        assert parser.parse(toks("c b")).accepted
        assert not parser.parse(toks("a a")).accepted


class TestStartRuleModification:
    def test_adding_start_rule_updates_start_kernel(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true")).accepted
        booleans.add_rule(
            Rule(booleans.start, [B, Terminal(";"), B], label="pairs")
        )
        assert generator.graph.start.is_initial
        assert parser.parse(toks("true ; false")).accepted
        assert parser.parse(toks("true")).accepted

    def test_deleting_start_rule(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true")).accepted
        generator.delete_rule(Rule(booleans.start, [B]))
        assert not parser.parse(toks("true")).accepted


class TestObserverWiring:
    def test_direct_grammar_edits_are_noticed(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true")).accepted
        # edit the grammar directly, not through the generator
        booleans.add_rule(Rule(B, [Terminal("unknown")]))
        assert parser.parse(toks("unknown")).accepted

    def test_close_detaches(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true")).accepted
        generator.close()
        booleans.add_rule(Rule(B, [Terminal("unknown")]))
        # the generator no longer tracks the grammar; the graph is stale
        # and the new sentence is (incorrectly, but by request) rejected
        assert not parser.parse(toks("unknown")).accepted

    def test_modifications_counted(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        generator.add_rule(Rule(B, [Terminal("u")]))
        generator.delete_rule(Rule(B, [Terminal("u")]))
        assert generator.modifications == 2

    def test_noop_edit_triggers_nothing(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        generator.add_rule(Rule(B, [Terminal("true")]))  # already present
        assert generator.modifications == 0
