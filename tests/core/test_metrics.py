"""Metrics: the §5.2 table fraction and graph summaries."""

import pytest

from repro.core import metrics as metrics_module
from repro.core.lazy import LazyGenerator
from repro.core.metrics import (
    ControlProbe,
    full_table_states,
    graph_summary,
    table_fraction,
)
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.parallel import PoolParser

from ..conftest import toks


class TestTableFraction:
    def test_zero_before_parsing(self, booleans):
        generator = LazyGenerator(booleans)
        assert table_fraction(generator.graph, booleans) == 0.0

    def test_partial_after_one_sentence(self, booleans):
        generator = LazyGenerator(booleans)
        parser = PoolParser(generator.control(), booleans)
        parser.parse(toks("true and true"))
        fraction = table_fraction(generator.graph, booleans)
        # Fig. 5.2: 5 of the 8 states of the full table are complete
        assert fraction == pytest.approx(5 / 8)

    def test_one_after_forcing(self, booleans):
        generator = LazyGenerator(booleans)
        generator.force()
        assert table_fraction(generator.graph, booleans) == 1.0


class TestFullTableMemoization:
    @pytest.fixture()
    def count_builds(self, monkeypatch):
        """Count reference-graph constructions behind full_table_states."""
        builds = []
        real_graph = metrics_module.ItemSetGraph

        class CountingGraph(real_graph):
            def __init__(self, grammar):
                builds.append(grammar)
                super().__init__(grammar)

        monkeypatch.setattr(metrics_module, "ItemSetGraph", CountingGraph)
        return builds

    def test_repeat_queries_build_the_reference_graph_once(
        self, booleans, count_builds
    ):
        first = full_table_states(booleans)
        assert len(count_builds) == 1
        assert full_table_states(booleans) == first
        assert full_table_states(booleans) == first
        assert len(count_builds) == 1  # memo hit: no rebuild

    def test_revision_bump_invalidates_the_memo(self, booleans, count_builds):
        before = full_table_states(booleans)
        assert len(count_builds) == 1
        booleans.add_rule(Rule(NonTerminal("B"), [Terminal("maybe")]))
        after = full_table_states(booleans)
        assert len(count_builds) == 2  # edit forced a rebuild
        assert after != before
        assert full_table_states(booleans) == after
        assert len(count_builds) == 2

    def test_memo_is_per_grammar_instance(self, count_builds):
        from repro.grammar.builders import grammar_from_text

        from ..conftest import BOOLEANS

        first = grammar_from_text(BOOLEANS)
        second = grammar_from_text(BOOLEANS)
        assert full_table_states(first) == full_table_states(second)
        assert len(count_builds) == 2  # one reference build per instance

    def test_table_fraction_reuses_the_memo(self, booleans, count_builds):
        generator = LazyGenerator(booleans)
        parser = PoolParser(generator.control(), booleans)
        parser.parse(toks("true and true"))
        for _ in range(3):
            table_fraction(generator.graph, booleans)
        assert len(count_builds) == 1


class TestGraphSummary:
    def test_summary_keys(self, booleans):
        generator = LazyGenerator(booleans)
        summary = graph_summary(generator.graph)
        for key in ("states", "complete", "initial", "dirty", "transitions"):
            assert key in summary

    def test_counts_consistent(self, booleans):
        generator = LazyGenerator(booleans)
        parser = PoolParser(generator.control(), booleans)
        parser.parse(toks("true or false"))
        summary = graph_summary(generator.graph)
        assert (
            summary["complete"] + summary["initial"] + summary["dirty"]
            == summary["states"]
        )


class TestControlProbe:
    def test_counts_calls(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        parser = PoolParser(probe, booleans)
        parser.parse(toks("true and true"))
        snapshot = probe.snapshot()
        assert snapshot["action_calls"] > 0
        assert snapshot["goto_calls"] > 0
        assert snapshot["expansions_triggered"] > 0

    def test_transparent_start_state(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        assert probe.start_state is generator.graph.start

    def test_graph_passthrough(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        assert probe.graph is generator.graph


class TestLatencyStats:
    def test_records_per_key(self):
        from repro.core.metrics import LatencyStats

        stats = LatencyStats()
        stats.record("parse", 0.2)
        stats.record("parse", 0.4)
        stats.record("open", 0.1)
        report = stats.snapshot()
        assert report["parse"]["count"] == 2
        assert abs(report["parse"]["seconds"] - 0.6) < 1e-9
        assert abs(report["parse"]["mean"] - 0.3) < 1e-9
        assert stats.total_count == 3
        assert abs(stats.total_seconds - 0.7) < 1e-9

    def test_empty_snapshot(self):
        from repro.core.metrics import LatencyStats

        assert LatencyStats().snapshot() == {}

    def test_no_percentiles_without_a_window(self):
        from repro.core.metrics import LatencyStats

        stats = LatencyStats()
        stats.record("parse", 0.1)
        assert "p50" not in stats.snapshot()["parse"]
        assert stats.percentiles("parse") == {}

    def test_windowed_percentiles(self):
        from repro.core.metrics import LatencyStats

        stats = LatencyStats(window=256)
        for value in range(1, 101):  # 0.01 .. 1.00
            stats.record("parse", value / 100.0)
        report = stats.snapshot()["parse"]
        assert abs(report["p50"] - 0.50) < 0.02
        assert abs(report["p99"] - 0.99) < 0.02

    def test_window_slides(self):
        from repro.core.metrics import LatencyStats

        stats = LatencyStats(window=10)
        for _ in range(50):
            stats.record("parse", 1.0)
        for _ in range(10):
            stats.record("parse", 2.0)  # the window now holds only these
        assert stats.percentiles("parse")["p50"] == 2.0
        assert stats.snapshot()["parse"]["count"] == 60

    def test_concurrent_recording_is_consistent(self):
        import threading

        from repro.core.metrics import LatencyStats

        stats = LatencyStats(window=64)

        def worker():
            for _ in range(2000):
                stats.record("parse", 0.001)
                stats.snapshot()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert stats.total_count == 8000
