"""Metrics: the §5.2 table fraction and graph summaries."""

import pytest

from repro.core.lazy import LazyGenerator
from repro.core.metrics import ControlProbe, graph_summary, table_fraction
from repro.runtime.parallel import PoolParser

from ..conftest import toks


class TestTableFraction:
    def test_zero_before_parsing(self, booleans):
        generator = LazyGenerator(booleans)
        assert table_fraction(generator.graph, booleans) == 0.0

    def test_partial_after_one_sentence(self, booleans):
        generator = LazyGenerator(booleans)
        parser = PoolParser(generator.control(), booleans)
        parser.parse(toks("true and true"))
        fraction = table_fraction(generator.graph, booleans)
        # Fig. 5.2: 5 of the 8 states of the full table are complete
        assert fraction == pytest.approx(5 / 8)

    def test_one_after_forcing(self, booleans):
        generator = LazyGenerator(booleans)
        generator.force()
        assert table_fraction(generator.graph, booleans) == 1.0


class TestGraphSummary:
    def test_summary_keys(self, booleans):
        generator = LazyGenerator(booleans)
        summary = graph_summary(generator.graph)
        for key in ("states", "complete", "initial", "dirty", "transitions"):
            assert key in summary

    def test_counts_consistent(self, booleans):
        generator = LazyGenerator(booleans)
        parser = PoolParser(generator.control(), booleans)
        parser.parse(toks("true or false"))
        summary = graph_summary(generator.graph)
        assert (
            summary["complete"] + summary["initial"] + summary["dirty"]
            == summary["states"]
        )


class TestControlProbe:
    def test_counts_calls(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        parser = PoolParser(probe, booleans)
        parser.parse(toks("true and true"))
        snapshot = probe.snapshot()
        assert snapshot["action_calls"] > 0
        assert snapshot["goto_calls"] > 0
        assert snapshot["expansions_triggered"] > 0

    def test_transparent_start_state(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        assert probe.start_state is generator.graph.start

    def test_graph_passthrough(self, booleans):
        generator = LazyGenerator(booleans)
        probe = ControlProbe(generator.control())
        assert probe.graph is generator.graph


class TestLatencyStats:
    def test_records_per_key(self):
        from repro.core.metrics import LatencyStats

        stats = LatencyStats()
        stats.record("parse", 0.2)
        stats.record("parse", 0.4)
        stats.record("open", 0.1)
        report = stats.snapshot()
        assert report["parse"]["count"] == 2
        assert abs(report["parse"]["seconds"] - 0.6) < 1e-9
        assert abs(report["parse"]["mean"] - 0.3) < 1e-9
        assert stats.total_count == 3
        assert abs(stats.total_seconds - 0.7) < 1e-9

    def test_empty_snapshot(self):
        from repro.core.metrics import LatencyStats

        assert LatencyStats().snapshot() == {}
