"""E10 — section 6.2: garbage collection of item sets."""

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.lr.states import StateType
from repro.runtime.parallel import PoolParser

from ..conftest import toks

B = NonTerminal("B")


@pytest.fixture()
def warm(booleans):
    generator = IncrementalGenerator(booleans, gc=True)
    parser = PoolParser(generator.control, booleans)
    assert parser.parse(toks("true and true or false")).accepted
    return generator, parser


class TestDirtyStates:
    def test_modify_marks_dirty_not_initial(self, warm):
        generator, _parser = warm
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        dirty = [s for s in generator.graph.states() if s.is_dirty]
        assert dirty, "with GC on, MODIFY should produce dirty states"
        for state in dirty:
            assert state.old_transitions, "dirty states keep their history"
            assert not state.transitions

    def test_initial_states_have_nothing_to_stash(self, booleans):
        generator = IncrementalGenerator(booleans, gc=True)
        # nothing parsed: only the initial start state exists
        generator.add_rule(Rule(booleans.start, [B, B]))
        assert generator.graph.start.type is not StateType.DIRTY

    def test_double_modify_keeps_original_history(self, warm):
        generator, _parser = warm
        generator.add_rule(Rule(B, [Terminal("u1")]))
        dirty = next(s for s in generator.graph.states() if s.is_dirty)
        history = dirty.old_transitions
        generator.add_rule(Rule(B, [Terminal("u2")]))
        assert dirty.old_transitions is history


class TestReexpansionAndRefcounts:
    def test_refcounts_balanced_after_session(self, warm):
        generator, parser = warm
        rule = Rule(B, [Terminal("unknown")])
        generator.add_rule(rule)
        assert parser.parse(toks("unknown or true")).accepted
        generator.delete_rule(rule)
        assert parser.parse(toks("true and false")).accepted
        assert generator.collector is not None
        assert generator.collector.check_refcounts() == []

    def test_dangling_region_survives_until_reexpansion(self, warm):
        generator, parser = warm
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        # before any re-expansion, nothing was collected (Fig. 6.4's
        # dangling 1, 2, 3 must be retained for reconnection)
        assert generator.graph.stats.states_removed == 0
        assert parser.parse(toks("true and unknown")).accepted
        # after re-expansion, the old targets were reconnected, not freed
        states = {s.uid: s for s in generator.graph.states()}
        assert 1 in states and 2 in states and 3 in states

    def test_xor_example_reclaims_states(self, booleans):
        """The paper's §6.2 example: after adding 'B ::= B xor B', the old
        operator region (states 1, 6, 7) can never be re-used..."""
        generator = IncrementalGenerator(booleans, gc=True)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true and true or false")).accepted
        generator.add_rule(Rule(B, [B, Terminal("xor"), B]))
        assert parser.parse(toks("true xor true")).accepted
        # ...they are reclaimed once the re-expansions release them, or
        # at the latest by the cycle sweep.
        removed_by_refcount = generator.graph.stats.states_removed
        generator.collect_garbage(force_sweep=True)
        states = {s.uid for s in generator.graph.states()}
        assert 1 not in states or removed_by_refcount > 0

    def test_refcount_cascade(self, warm):
        generator, parser = warm
        # delete the only path into the 'and' region, re-expand, and the
        # whole chain 4→6 should eventually be released by the sweep
        generator.delete_rule(Rule(B, [B, Terminal("and"), B]))
        assert parser.parse(toks("true or false")).accepted
        generator.collect_garbage(force_sweep=True)
        for state in generator.graph.states():
            for item in state.kernel:
                assert "and" not in str(item)


class TestMarkAndSweep:
    def test_sweep_keeps_dirty_histories_alive(self, warm):
        generator, _parser = warm
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        generator.collector.collect_cycles()
        # 1, 2, 3 are reachable through the dirty start state's history
        states = {s.uid for s in generator.graph.states()}
        assert {1, 2, 3} <= states

    def test_sweep_removes_orphaned_cycles(self, booleans):
        generator = IncrementalGenerator(booleans, gc=True)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true and true or true")).accepted
        # replace the whole operator language: the 4↔6/5↔7 cycle orbits
        # become garbage that pure refcounting cannot free
        generator.delete_rule(Rule(B, [B, Terminal("and"), B]))
        generator.delete_rule(Rule(B, [B, Terminal("or"), B]))
        assert parser.parse(toks("true")).accepted
        live_before = len(generator.graph)
        removed = generator.collector.collect_cycles()
        assert removed > 0
        assert len(generator.graph) == live_before - removed
        assert generator.collector.check_refcounts() == []

    def test_sweep_never_removes_start(self, warm):
        generator, _parser = warm
        generator.collector.collect_cycles()
        assert generator.graph.start in generator.graph

    def test_dirty_fraction_and_threshold(self, warm):
        generator, _parser = warm
        assert generator.collector.dirty_fraction() == 0.0
        generator.add_rule(Rule(B, [Terminal("unknown")]))
        assert generator.collector.dirty_fraction() > 0.0
        # collect_garbage honours the threshold
        removed = generator.collect_garbage(dirty_threshold=0.99)
        assert removed == 0

    def test_collect_garbage_disabled_without_gc(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        assert generator.collect_garbage(force_sweep=True) == 0


class TestGcOffMode:
    def test_without_gc_states_accumulate(self, booleans):
        generator = IncrementalGenerator(booleans, gc=False)
        parser = PoolParser(generator.control, booleans)
        assert parser.parse(toks("true and true")).accepted
        for index in range(5):
            rule = Rule(B, [Terminal(f"g{index}")])
            generator.add_rule(rule)
            assert parser.parse(toks(f"g{index}")).accepted
            generator.delete_rule(rule)
            assert parser.parse(toks("true")).accepted
        assert generator.graph.stats.states_removed == 0
