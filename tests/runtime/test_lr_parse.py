"""LR-PARSE (section 3.1) and the Fig. 4.2 move trace."""

import pytest

from repro.grammar.builders import grammar_from_text
from repro.grammar.rules import Rule
from repro.lr.generator import ConventionalGenerator
from repro.runtime.errors import AmbiguousInputError, ParseError
from repro.runtime.forest import bracketed, tokens_of
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.trace import Trace

from ..conftest import toks


@pytest.fixture()
def boolean_parser(booleans):
    control = ConventionalGenerator(booleans).generate()
    return SimpleLRParser(control, booleans)


class TestRecognition:
    def test_accepts_simple_sentences(self, boolean_parser):
        assert boolean_parser.recognize(toks("true"))
        assert boolean_parser.recognize(toks("true or false"))
        assert boolean_parser.recognize(toks("true and false"))

    def test_rejects_garbage(self, boolean_parser):
        assert not boolean_parser.recognize(toks("or"))
        assert not boolean_parser.recognize(toks("true or"))
        assert not boolean_parser.recognize(toks("true true"))
        assert not boolean_parser.recognize(toks(""))

    def test_parse_raises_on_error(self, boolean_parser):
        with pytest.raises(ParseError) as excinfo:
            boolean_parser.parse(toks("true or"))
        assert excinfo.value.position == 2  # the end marker

    def test_ambiguous_cell_raises(self, boolean_parser):
        # 'true or false or true' needs a fork; LR-PARSE cannot
        with pytest.raises(AmbiguousInputError):
            boolean_parser.parse(toks("true or false or true"))


class TestFig42Trace:
    """The exact moves of Fig. 4.2 for the sentence 'true or false'."""

    def test_moves(self, boolean_parser):
        trace = Trace()
        result = boolean_parser.parse(toks("true or false"), trace=trace)
        assert result.accepted
        assert trace.moves() == (
            ("shift", 0),   # true: state 0 → 2
            ("reduce", 2),  # B ::= true, back to 0, GOTO B → 1
            ("shift", 1),   # or: state 1 → 5
            ("shift", 5),   # false: state 5 → 3
            ("reduce", 3),  # B ::= false, GOTO(5, B) → 7
            ("reduce", 7),  # B ::= B or B, back to 0, GOTO B → 1
            ("accept", 1),
        )

    def test_trace_renders(self, boolean_parser):
        trace = Trace()
        boolean_parser.parse(toks("true or false"), trace=trace)
        rendered = trace.render()
        assert "shift" in rendered and "accept" in rendered
        assert len(trace) == 7


class TestTrees:
    def test_tree_covers_input(self, boolean_parser):
        result = boolean_parser.parse(toks("true and false"))
        assert tokens_of(result.tree) == tuple(toks("true and false"))

    def test_tree_structure(self, boolean_parser):
        result = boolean_parser.parse(toks("true and false"))
        assert bracketed(result.tree) == "START(B(B(true) and B(false)))"

    def test_tree_skipped_in_recognition_mode(self, boolean_parser):
        result = boolean_parser.parse(toks("true"), build_tree=False)
        assert result.accepted
        assert result.tree is None

    def test_without_grammar_returns_top_symbol_tree(self, booleans):
        control = ConventionalGenerator(booleans).generate()
        parser = SimpleLRParser(control)  # no grammar: no START recovery
        result = parser.parse(toks("true"))
        assert bracketed(result.tree) == "B(true)"


class TestEpsilonRules:
    def test_parses_with_epsilon(self, epsilon_grammar):
        control = ConventionalGenerator(epsilon_grammar).generate()
        parser = SimpleLRParser(control, epsilon_grammar)
        result = parser.parse(toks("b"))
        assert result.accepted
        assert bracketed(result.tree) == "START(S(A() b C()))"

    def test_epsilon_start(self):
        grammar = grammar_from_text(
            """
            S ::=
            START ::= S
            """
        )
        control = ConventionalGenerator(grammar).generate()
        parser = SimpleLRParser(control, grammar)
        assert parser.recognize([])
        assert not parser.recognize(toks("x"))
