"""Cooperative request deadlines: scope mechanics and parser enforcement."""

import time

import pytest

from repro.api import Language
from repro.runtime.deadline import (
    CHECK_MASK,
    Deadline,
    active_deadline,
    deadline_scope,
)
from repro.runtime.errors import DeadlineExceeded, ParseError


class TestDeadlineScope:
    def test_no_deadline_by_default(self):
        assert active_deadline() is None

    def test_scope_installs_and_restores(self):
        with deadline_scope(1000) as deadline:
            assert active_deadline() is deadline
            assert deadline.ms == 1000
        assert active_deadline() is None

    def test_none_is_a_no_op(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert active_deadline() is None

    def test_scopes_nest_and_restore_outer(self):
        with deadline_scope(1000) as outer:
            with deadline_scope(50) as inner:
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_restored_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(1000):
                raise RuntimeError("boom")
        assert active_deadline() is None

    def test_thread_locality(self):
        import threading

        seen = []
        with deadline_scope(1000):
            thread = threading.Thread(
                target=lambda: seen.append(active_deadline())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestDeadlineObject:
    def test_expires(self):
        deadline = Deadline(1)
        time.sleep(0.01)
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0

    def test_not_yet_expired(self):
        deadline = Deadline(60_000)
        assert not deadline.expired()
        assert deadline.remaining_ms() > 0

    def test_exceed_carries_partial_progress(self):
        error = Deadline(5).exceed(42)
        assert isinstance(error, DeadlineExceeded)
        assert error.deadline_ms == 5
        assert error.tokens_consumed == 42

    def test_not_a_parse_error(self):
        # ParseError is caught and converted to diagnostics deep inside
        # the engines; a deadline must never be swallowed that way.
        assert not issubclass(DeadlineExceeded, ParseError)

    def test_check_mask_is_power_of_two_minus_one(self):
        assert (CHECK_MASK & (CHECK_MASK + 1)) == 0


AMBIGUOUS = "E ::= E E\nE ::= x"


def ambiguous_language():
    return Language.from_text("START ::= E\n" + AMBIGUOUS)


class TestParserEnforcement:
    def test_pool_parser_honors_deadline(self):
        language = ambiguous_language()
        tokens = "x " * 150
        with deadline_scope(30):
            with pytest.raises(DeadlineExceeded) as info:
                language.parse(tokens)
        assert info.value.deadline_ms == 30
        assert info.value.tokens_consumed is not None
        assert 0 <= info.value.tokens_consumed <= 150

    def test_pool_parser_overshoot_is_bounded(self):
        language = ambiguous_language()
        tokens = "x " * 150
        budget_ms = 40
        started = time.monotonic()
        with deadline_scope(budget_ms):
            with pytest.raises(DeadlineExceeded):
                language.parse(tokens)
        elapsed_ms = (time.monotonic() - started) * 1000
        # The acceptance bar is 10x; the step-gated checks normally land
        # well under 2x even on a loaded CI runner.
        assert elapsed_ms < budget_ms * 10

    def test_parse_succeeds_inside_generous_deadline(self):
        language = ambiguous_language()
        with deadline_scope(60_000):
            outcome = language.parse("x x x")
        assert outcome.accepted

    def test_no_deadline_means_no_limit(self):
        language = ambiguous_language()
        outcome = language.parse("x x x x")
        assert outcome.accepted

    def test_gss_honors_deadline(self):
        from repro.grammar.builders import grammar_from_text
        from repro.lr.generator import ConventionalGenerator
        from repro.runtime.gss import GSSParser

        grammar = grammar_from_text("START ::= E\n" + AMBIGUOUS)
        parser = GSSParser(ConventionalGenerator(grammar).generate())
        terminals = {t.name: t for t in grammar.terminals}
        tokens = [terminals["x"]] * 50
        # An already-expired deadline trips the per-position check on the
        # very first symbol — deterministic, no timing dependence.
        with deadline_scope(1):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                parser.recognize(tokens)

    def test_incremental_sweep_honors_deadline(self):
        from repro.service.workspace import Workspace

        workspace = Workspace(16)
        workspace.open("d", grammar_text="START ::= E\n" + AMBIGUOUS)
        payload, _cached = workspace.parse("d", "x x x", checkpoint=True)
        result_id = payload["result"]
        with deadline_scope(1):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                workspace.edit_parse(
                    "d", result_id, 1, 2, " ".join(["x"] * 120)
                )
