"""Cons-cell parse stacks: sharing, popping, signatures."""

import pytest

from repro.runtime.stacks import StackCell, shared_cells


def build(*states):
    stack = StackCell(states[0])
    for state in states[1:]:
        stack = stack.push(state)
    return stack


class TestBasics:
    def test_push_creates_new_cell(self):
        a = build(0)
        b = a.push(1)
        assert b.state == 1
        assert b.below is a
        assert a.state == 0  # untouched

    def test_depth(self):
        assert len(build(0, 1, 2)) == 3

    def test_states_top_to_bottom(self):
        assert build(0, 1, 2).states() == (2, 1, 0)

    def test_push_does_not_disturb_signature(self):
        # Cells are immutable by convention (enforcement was dropped from
        # the hot path); pushing must never change an existing cell's
        # identity, chain, or cached signature hash.
        cell = build(0, 1)
        sig_before = cell.sig
        states_before = cell.states()
        cell.push(2)
        assert cell.sig == sig_before
        assert cell.states() == states_before
        assert cell.depth == 2


class TestPop:
    def test_pop_returns_trees_left_to_right(self):
        stack = StackCell(0)
        stack = stack.push(1, "left")
        stack = stack.push(2, "mid")
        stack = stack.push(3, "right")
        below, trees = stack.pop(3)
        assert below.state == 0
        assert trees == ["left", "mid", "right"]

    def test_pop_zero(self):
        stack = build(0, 1)
        below, trees = stack.pop(0)
        assert below is stack
        assert trees == []

    def test_pop_preserves_original_chain(self):
        stack = build(0, 1, 2)
        stack.pop(2)
        assert stack.states() == (2, 1, 0)

    def test_pop_past_bottom_raises(self):
        with pytest.raises(IndexError):
            build(0, 1).pop(2)  # popping the start state is an error

    def test_pop_exactly_to_bottom_raises(self):
        # the start state must always remain
        with pytest.raises(IndexError):
            build(0).pop(1)


class TestSharing:
    def test_fork_shares_all_cells(self):
        trunk = build(0, 1, 2)
        left = trunk.push(3)
        right = trunk.push(4)
        assert shared_cells(left, right) == 3

    def test_divergent_stacks_share_common_tail(self):
        trunk = build(0, 1)
        left = trunk.push(2).push(3)
        right = trunk.push(9)
        assert shared_cells(left, right) == 2

    def test_fork_is_o1(self):
        # structural check standing in for timing: pushing onto a deep
        # stack must not copy it (the below pointer is identical)
        deep = build(*range(10_000))
        forked = deep.push(-1)
        assert forked.below is deep


class TestSignatures:
    def test_signature_equal_for_same_cells(self):
        stack = build(0, 1)
        assert stack.signature() == stack.signature()

    def test_signature_distinguishes_structurally_equal_ints(self):
        # identity-based: distinct state objects differ even if equal
        class State:
            pass

        a, b = State(), State()
        assert StackCell(a).signature() != StackCell(b).signature()

    def test_full_signature_includes_trees(self):
        base = StackCell(0)
        with_tree = base.push(1, tree="t1")
        with_other = base.push(1, tree="t2")
        assert with_tree.signature() == with_other.signature()
        assert with_tree.full_signature() != with_other.full_signature()

    def test_iteration(self):
        assert [cell.state for cell in build(0, 1, 2)] == [2, 1, 0]


class TestCellAsKey:
    """A cell is its own O(1) signature key (__hash__/__eq__)."""

    def test_same_chain_same_key(self):
        class State:
            pass

        a, b = State(), State()
        trunk = StackCell(a)
        left = trunk.push(b, tree="t")
        right = trunk.push(b, tree="t")
        assert hash(left) == hash(right)
        assert left == right
        assert len({left, right}) == 1

    def test_different_trees_different_key(self):
        trunk = StackCell(0)
        with_t1 = trunk.push(1, tree="t1")
        with_t2 = trunk.push(1, tree="t2")
        assert with_t1 != with_t2

    def test_distinct_state_objects_differ(self):
        class State:
            pass

        assert StackCell(State()) != StackCell(State())

    def test_different_depths_differ(self):
        assert build(0, 1) != build(0, 1, 1)

    def test_hash_is_cached_not_recomputed(self):
        deep = build(*range(1000))
        assert hash(deep) == deep.sig  # O(1) read of the push-time hash

    def test_shared_tail_equality_short_circuits(self):
        # Equality between converging forks walks only the divergent
        # prefix; this is a semantic check that it *is* equality.
        class State:
            pass

        s = State()
        trunk = build(*range(50))
        left = trunk.push(s)
        right = trunk.push(s)
        assert left == right
        assert left is not right
