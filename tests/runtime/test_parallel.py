"""PAR-PARSE (section 3.2): forking, synchronization, trees, guards."""

import pytest

from repro.grammar.builders import grammar_from_text
from repro.lr.generator import ConventionalGenerator
from repro.runtime.errors import SweepLimitExceeded
from repro.runtime.forest import bracketed, tokens_of
from repro.runtime.parallel import PoolParser

from ..conftest import toks


def pool_for(grammar, **kwargs):
    control = ConventionalGenerator(grammar).generate()
    return PoolParser(control, grammar, **kwargs)


class TestRecognition:
    def test_accepts_and_rejects(self, booleans):
        parser = pool_for(booleans)
        assert parser.recognize(toks("true or false and true"))
        assert not parser.recognize(toks("true or"))
        assert not parser.recognize(toks(""))

    def test_matches_deterministic_parser_on_unambiguous(self, expr):
        parser = pool_for(expr)
        assert parser.recognize(toks("n + n * ( n + n )"))
        assert not parser.recognize(toks("n + * n"))

    def test_epsilon_rules(self, epsilon_grammar):
        parser = pool_for(epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b c"))
        assert not parser.recognize(toks("a"))


class TestForking:
    def test_forks_on_conflicts(self, booleans):
        parser = pool_for(booleans)
        result = parser.parse(toks("true or false and true"))
        assert result.accepted
        assert result.stats.forks > 0

    def test_all_parsers_die_means_reject(self, booleans):
        parser = pool_for(booleans)
        result = parser.parse(toks("true or or"))
        assert not result.accepted
        assert result.trees == ()

    def test_sweeps_count_input_symbols(self, booleans):
        parser = pool_for(booleans)
        result = parser.parse(toks("true or false"))
        # three tokens plus the end marker
        assert result.stats.sweeps == 4


class TestAmbiguity:
    def test_two_parses(self, ambiguous_expr):
        parser = pool_for(ambiguous_expr)
        result = parser.parse(toks("n + n + n"))
        assert result.accepted
        assert result.is_ambiguous
        assert len(result.trees) == 2
        assert result.tree is None  # no unique tree

    def test_catalan_counts(self, ambiguous_expr):
        parser = pool_for(ambiguous_expr)
        catalan = {1: 1, 2: 2, 3: 5, 4: 14, 5: 42}
        for operators, expected in catalan.items():
            sentence = toks(" ".join(["n"] + ["+ n"] * operators))
            assert len(parser.parse(sentence).trees) == expected

    def test_all_trees_yield_the_input(self, ambiguous_expr):
        parser = pool_for(ambiguous_expr)
        sentence = toks("n + n + n + n")
        result = parser.parse(sentence)
        for tree in result.trees:
            assert tokens_of(tree) == tuple(sentence)

    def test_trees_are_distinct(self, ambiguous_expr):
        parser = pool_for(ambiguous_expr)
        result = parser.parse(toks("n + n + n"))
        assert len({bracketed(t) for t in result.trees}) == len(result.trees)

    def test_unambiguous_sentence_single_tree(self, booleans):
        parser = pool_for(booleans)
        result = parser.parse(toks("true and false"))
        assert len(result.trees) == 1
        assert bracketed(result.tree) == "START(B(B(true) and B(false)))"


class TestSharing:
    def test_forest_shares_across_parses(self, ambiguous_expr):
        parser = pool_for(ambiguous_expr)
        result = parser.parse(toks("n + n + n"))
        left, right = result.trees
        # the two parses share their leaf nodes (hash-consing)
        from repro.runtime.forest import Leaf, node_count

        total_if_unshared = node_count(left) + node_count(right)
        seen = set()
        shared_total = node_count(left, seen) + node_count(right, seen)
        assert shared_total < total_if_unshared


class TestGuards:
    def test_cyclic_grammar_detected(self):
        cyclic = grammar_from_text(
            """
            A ::= A
            A ::= a
            START ::= A
            """
        )
        parser = pool_for(cyclic, max_sweep_steps=10_000)
        with pytest.raises(SweepLimitExceeded):
            parser.parse(toks("a"))

    def test_cyclic_recognition_terminates_with_state_dedup(self):
        # In recognition mode signatures ignore trees, so the A ::= A loop
        # converges instead of spinning.
        cyclic = grammar_from_text(
            """
            A ::= A
            A ::= a
            START ::= A
            """
        )
        parser = pool_for(cyclic)
        assert parser.recognize(toks("a"))

    def test_duplicate_parsers_dropped_in_recognition(self, ambiguous_expr):
        # In recognition mode signatures ignore trees, so the ambiguous
        # derivations converge onto identical stacks and get merged.
        parser = pool_for(ambiguous_expr)
        result = parser._run(
            toks("n + n + n + n"), build_trees=False, trace=None
        )
        assert result.accepted
        assert result.stats.duplicates_dropped > 0
