"""The GSS GLR recognizer: agreement with the pool parser, merging."""


from repro.grammar.builders import grammar_from_text
from repro.lr.generator import ConventionalGenerator
from repro.runtime.gss import GSSParser, _paths, GSSNode
from repro.runtime.parallel import PoolParser

from ..conftest import toks


def gss_for(grammar):
    return GSSParser(ConventionalGenerator(grammar).generate())


class TestRecognition:
    def test_booleans(self, booleans):
        parser = gss_for(booleans)
        assert parser.recognize(toks("true or false and true"))
        assert not parser.recognize(toks("or true"))
        assert not parser.recognize(toks(""))

    def test_ambiguous(self, ambiguous_expr):
        parser = gss_for(ambiguous_expr)
        assert parser.recognize(toks("n + n + n + n + n"))
        assert not parser.recognize(toks("n + + n"))

    def test_epsilon_rules(self, epsilon_grammar):
        parser = gss_for(epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b"))
        assert parser.recognize(toks("a b c"))
        assert not parser.recognize(toks("c b"))

    def test_empty_sentence_nullable_start(self):
        grammar = grammar_from_text(
            """
            S ::=
            S ::= a S
            START ::= S
            """
        )
        parser = gss_for(grammar)
        assert parser.recognize([])
        assert parser.recognize(toks("a a a"))

    def test_cyclic_grammar_terminates(self):
        # the merged representation turns the A ::= A loop into a cycle
        # edge instead of an unbounded pool
        cyclic = grammar_from_text(
            """
            A ::= A
            A ::= a
            START ::= A
            """
        )
        parser = gss_for(cyclic)
        assert parser.recognize(toks("a"))
        assert not parser.recognize(toks("a a"))

    def test_hidden_left_recursion(self):
        # S ::= A S b with nullable A defeats the linear-stack pool
        # parser; the GSS handles it through node reuse.
        grammar = grammar_from_text(
            """
            S ::= A S b
            S ::= s
            A ::=
            START ::= S
            """
        )
        parser = gss_for(grammar)
        assert parser.recognize(toks("s"))
        assert parser.recognize(toks("s b"))
        assert parser.recognize(toks("s b b b"))
        assert not parser.recognize(toks("b"))


class TestAgreementWithPool:
    SENTENCES = [
        "n",
        "n + n",
        "n + n + n + n",
        "n +",
        "+ n",
        "",
        "n n",
    ]

    def test_same_verdicts(self, ambiguous_expr):
        gss = gss_for(ambiguous_expr)
        pool = PoolParser(
            ConventionalGenerator(ambiguous_expr).generate(), ambiguous_expr
        )
        for sentence in self.SENTENCES:
            assert gss.recognize(toks(sentence)) == pool.recognize(
                toks(sentence)
            ), sentence


class TestMerging:
    def test_frontier_bounded_by_states(self, ambiguous_expr):
        parser = gss_for(ambiguous_expr)
        small = toks("n + n + n")
        large = toks(" ".join(["n"] + ["+ n"] * 12))
        parser.recognize(small)
        small_nodes = parser.last_stats["nodes_created"]
        parser.recognize(large)
        large_nodes = parser.last_stats["nodes_created"]
        # node growth is linear in input length, not Catalan
        assert large_nodes < small_nodes * 8

    def test_stats_populated(self, booleans):
        parser = gss_for(booleans)
        parser.recognize(toks("true and true"))
        assert parser.last_stats["nodes_created"] > 0
        assert parser.last_stats["reductions_applied"] > 0


class TestPathEnumeration:
    def test_zero_length_path_is_node_itself(self):
        node = GSSNode("s")
        assert _paths(node, 0) == [(node,)]

    def test_paths_follow_edges(self):
        a, b, c = GSSNode("a"), GSSNode("b"), GSSNode("c")
        a.edges.append(b)
        a.edges.append(c)
        paths = _paths(a, 1)
        assert (a, b) in paths and (a, c) in paths

    def test_cycle_bounded_by_length(self):
        a = GSSNode("a")
        a.edges.append(a)  # self-cycle
        assert len(_paths(a, 3)) == 1  # exactly one (looping) path
