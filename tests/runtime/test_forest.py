"""Hash-consed parse forests: sharing, yields, rendering."""

import pytest

from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.errors import CyclicForestError, ForestCapExceeded
from repro.runtime.forest import (
    ENUMERATION_CAP,
    Forest,
    ParseForest,
    bracketed,
    count_trees,
    depth,
    enumerate_strings,
    node_count,
    pretty,
    tokens_of,
)

B = NonTerminal("B")
true = Terminal("true")
or_ = Terminal("or")
R_TRUE = Rule(B, [true])
R_OR = Rule(B, [B, or_, B])


class TestHashConsing:
    def test_leaves_are_shared(self):
        forest = Forest()
        assert forest.leaf(true, 0) is forest.leaf(true, 0)

    def test_leaves_differ_by_position(self):
        forest = Forest()
        assert forest.leaf(true, 0) is not forest.leaf(true, 2)

    def test_nodes_are_shared(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        assert forest.node(R_TRUE, [leaf]) is forest.node(R_TRUE, [leaf])

    def test_nodes_differ_by_children_identity(self):
        forest = Forest()
        a = forest.node(R_TRUE, [forest.leaf(true, 0)])
        b = forest.node(R_TRUE, [forest.leaf(true, 2)])
        assert a is not b

    def test_size_counts_distinct_nodes(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        forest.node(R_TRUE, [leaf])
        forest.node(R_TRUE, [leaf])  # shared, no growth
        assert forest.size == 2


class TestNodes:
    def test_arity_checked(self):
        forest = Forest()
        with pytest.raises(ValueError):
            forest.node(R_OR, [forest.leaf(true, 0)])

    def test_symbols(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        node = forest.node(R_TRUE, [leaf])
        assert leaf.symbol == true
        assert node.symbol == B

    def test_width(self):
        forest = Forest()
        left = forest.node(R_TRUE, [forest.leaf(true, 0)])
        right = forest.node(R_TRUE, [forest.leaf(true, 2)])
        top = forest.node(R_OR, [left, forest.leaf(or_, 1), right])
        assert top.width() == 3

    def test_immutability(self):
        forest = Forest()
        node = forest.node(R_TRUE, [forest.leaf(true, 0)])
        with pytest.raises(AttributeError):
            node.children = ()  # type: ignore[misc]


class TestUtilities:
    def _tree(self):
        forest = Forest()
        left = forest.node(R_TRUE, [forest.leaf(true, 0)])
        right = forest.node(R_TRUE, [forest.leaf(true, 2)])
        return forest.node(R_OR, [left, forest.leaf(or_, 1), right])

    def test_tokens_of(self):
        assert tokens_of(self._tree()) == (true, or_, true)

    def test_bracketed(self):
        assert bracketed(self._tree()) == "B(B(true) or B(true))"

    def test_pretty_contains_rules(self):
        rendered = pretty(self._tree())
        assert "B ::= B or B" in rendered
        assert "true" in rendered

    def test_depth(self):
        assert depth(self._tree()) == 3

    def test_node_count_respects_sharing(self):
        forest = Forest()
        shared = forest.node(R_TRUE, [forest.leaf(true, 0)])
        top = forest.node(R_OR, [shared, forest.leaf(or_, 1), shared])
        # shared subtree counted once: top + shared + leaf(true) + leaf(or)
        assert node_count(top) == 4


class TestPackedForests:
    """SPPF packing: shared ambiguity nodes, counting, lazy enumeration."""

    def _ambiguous_five(self):
        """``true or true or true`` packed Rekers-style: two derivations."""
        f = Forest()
        leaves = {i: f.leaf(true, i) for i in (0, 2, 4)}
        ors = {i: f.leaf(or_, i) for i in (1, 3)}
        packed = {}
        for start in (0, 2, 4):
            p = f.packed(B, start, start + 1)
            p.add(f.node(R_TRUE, [leaves[start]]))
            packed[start, start + 1] = p
        p03 = f.packed(B, 0, 3)
        p03.add(f.node(R_OR, [packed[0, 1], ors[1], packed[2, 3]]))
        p25 = f.packed(B, 2, 5)
        p25.add(f.node(R_OR, [packed[2, 3], ors[3], packed[4, 5]]))
        p05 = f.packed(B, 0, 5)
        p05.add(f.node(R_OR, [p03, ors[3], packed[4, 5]]))
        p05.add(f.node(R_OR, [packed[0, 1], ors[1], p25]))
        return f, p05

    def test_packed_nodes_are_per_span(self):
        f, _ = self._ambiguous_five()
        assert f.packed(B, 0, 5) is f.packed(B, 0, 5)
        assert f.packed(B, 0, 5) is not f.packed(B, 0, 3)

    def test_add_dedups_by_identity(self):
        f = Forest()
        p = f.packed(B, 0, 1)
        alt = f.node(R_TRUE, [f.leaf(true, 0)])
        assert p.add(alt) is True
        # hash-consing returns the same node, add refuses the duplicate
        assert p.add(f.node(R_TRUE, [f.leaf(true, 0)])) is False
        assert len(p.alternatives) == 1

    def test_count_trees_sums_alternatives(self):
        _, p05 = self._ambiguous_five()
        assert count_trees(p05) == 2

    def test_forest_handle_counts_and_enumerates(self):
        _, p05 = self._ambiguous_five()
        forest = ParseForest((p05,))
        assert forest.tree_count() == 2
        assert forest.is_ambiguous
        trees = list(forest.trees())
        assert len(trees) == 2
        assert forest.brackets() == [
            "B(B(B(true) or B(true)) or B(true))",
            "B(B(true) or B(B(true) or B(true)))",
        ]
        assert list(forest.trees(1)) and len(list(forest.trees(1))) == 1

    def test_enumerate_strings_matches_brackets(self):
        _, p05 = self._ambiguous_five()
        assert sorted(enumerate_strings(p05)) == ParseForest((p05,)).brackets()

    def _exponential_forest(self, width=14):
        """2**width derivations out of O(width) nodes."""
        f = Forest()
        alt_rule = Rule(B, [or_])
        spans = []
        for i in range(width):
            p = f.packed(B, i, i + 1)
            p.add(f.node(R_TRUE, [f.leaf(true, i)]))
            p.add(f.node(alt_rule, [f.leaf(or_, i)]))
            spans.append(p)
        wide = Rule(B, [B] * width)
        return ParseForest((f.node(wide, spans),)), width

    def test_unbounded_enumeration_over_cap_is_refused(self):
        forest, width = self._exponential_forest()
        assert forest.tree_count() == 2 ** width > ENUMERATION_CAP
        with pytest.raises(ForestCapExceeded, match="pass an explicit limit"):
            list(forest.trees())
        with pytest.raises(ForestCapExceeded):
            forest.brackets()
        with pytest.raises(ForestCapExceeded):
            list(enumerate_strings(forest.roots[0]))

    def test_bounded_enumeration_over_huge_forest_works(self):
        forest, _ = self._exponential_forest()
        some = list(forest.trees(5))
        assert len(some) == 5
        assert len({bracketed(t) for t in some}) == 5
        assert len(list(enumerate_strings(forest.roots[0], limit=3))) == 3

    def test_cyclic_forest_raises_instead_of_looping(self):
        f = Forest()
        unit = Rule(B, [B])
        p = f.packed(B, 0, 1)
        p.add(f.node(unit, [p]))  # B =>+ B over the same span
        with pytest.raises(CyclicForestError):
            count_trees(p)
        with pytest.raises(CyclicForestError):
            ParseForest((p,)).tree_count()

    def test_deep_chains_do_not_recurse(self):
        f = Forest()
        unit = Rule(B, [B])
        node = f.node(R_TRUE, [f.leaf(true, 0)])
        for _ in range(5000):  # far past the default recursion limit
            node = f.node(unit, [node])
        forest = ParseForest((node,))
        assert forest.tree_count() == 1
        (only,) = forest.trees()
        assert only is node  # identity preserved when nothing unpacks
