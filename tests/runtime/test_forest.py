"""Hash-consed parse forests: sharing, yields, rendering."""

import pytest

from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.forest import (
    Forest,
    bracketed,
    depth,
    node_count,
    pretty,
    tokens_of,
)

B = NonTerminal("B")
true = Terminal("true")
or_ = Terminal("or")
R_TRUE = Rule(B, [true])
R_OR = Rule(B, [B, or_, B])


class TestHashConsing:
    def test_leaves_are_shared(self):
        forest = Forest()
        assert forest.leaf(true, 0) is forest.leaf(true, 0)

    def test_leaves_differ_by_position(self):
        forest = Forest()
        assert forest.leaf(true, 0) is not forest.leaf(true, 2)

    def test_nodes_are_shared(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        assert forest.node(R_TRUE, [leaf]) is forest.node(R_TRUE, [leaf])

    def test_nodes_differ_by_children_identity(self):
        forest = Forest()
        a = forest.node(R_TRUE, [forest.leaf(true, 0)])
        b = forest.node(R_TRUE, [forest.leaf(true, 2)])
        assert a is not b

    def test_size_counts_distinct_nodes(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        forest.node(R_TRUE, [leaf])
        forest.node(R_TRUE, [leaf])  # shared, no growth
        assert forest.size == 2


class TestNodes:
    def test_arity_checked(self):
        forest = Forest()
        with pytest.raises(ValueError):
            forest.node(R_OR, [forest.leaf(true, 0)])

    def test_symbols(self):
        forest = Forest()
        leaf = forest.leaf(true, 0)
        node = forest.node(R_TRUE, [leaf])
        assert leaf.symbol == true
        assert node.symbol == B

    def test_width(self):
        forest = Forest()
        left = forest.node(R_TRUE, [forest.leaf(true, 0)])
        right = forest.node(R_TRUE, [forest.leaf(true, 2)])
        top = forest.node(R_OR, [left, forest.leaf(or_, 1), right])
        assert top.width() == 3

    def test_immutability(self):
        forest = Forest()
        node = forest.node(R_TRUE, [forest.leaf(true, 0)])
        with pytest.raises(AttributeError):
            node.children = ()  # type: ignore[misc]


class TestUtilities:
    def _tree(self):
        forest = Forest()
        left = forest.node(R_TRUE, [forest.leaf(true, 0)])
        right = forest.node(R_TRUE, [forest.leaf(true, 2)])
        return forest.node(R_OR, [left, forest.leaf(or_, 1), right])

    def test_tokens_of(self):
        assert tokens_of(self._tree()) == (true, or_, true)

    def test_bracketed(self):
        assert bracketed(self._tree()) == "B(B(true) or B(true))"

    def test_pretty_contains_rules(self):
        rendered = pretty(self._tree())
        assert "B ::= B or B" in rendered
        assert "true" in rendered

    def test_depth(self):
        assert depth(self._tree()) == 3

    def test_node_count_respects_sharing(self):
        forest = Forest()
        shared = forest.node(R_TRUE, [forest.leaf(true, 0)])
        top = forest.node(R_OR, [shared, forest.leaf(or_, 1), shared])
        # shared subtree counted once: top + shared + leaf(true) + leaf(or)
        assert node_count(top) == 4
