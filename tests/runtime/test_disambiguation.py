"""Priority/associativity tree filters."""

import pytest

from repro.core.ipg import IPG
from repro.grammar.builders import grammar_from_text
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.disambiguation import DisambiguationFilter
from repro.runtime.forest import bracketed


E = NonTerminal("E")
PLUS = Rule(E, [E, Terminal("+"), E])
TIMES = Rule(E, [E, Terminal("*"), E])
NUM = Rule(E, [Terminal("n")])

GRAMMAR = """
    E ::= n
    E ::= E + E
    E ::= E * E
    START ::= E
"""


@pytest.fixture()
def ipg():
    return IPG(grammar_from_text(GRAMMAR))


class TestAssociativity:
    def test_left_assoc_keeps_left_leaning_tree(self, ipg):
        filt = DisambiguationFilter().left_assoc(PLUS)
        result = ipg.parse("n + n + n")
        assert len(result.trees) == 2
        survivors = filt.filter(result.trees)
        assert len(survivors) == 1
        assert bracketed(survivors[0]) == "START(E(E(E(n) + E(n)) + E(n)))"

    def test_right_assoc_keeps_right_leaning_tree(self, ipg):
        filt = DisambiguationFilter().right_assoc(PLUS)
        survivors = filt.filter(ipg.parse("n + n + n").trees)
        assert [bracketed(t) for t in survivors] == [
            "START(E(E(n) + E(E(n) + E(n))))"
        ]

    def test_non_assoc_rejects_chains_entirely(self, ipg):
        filt = DisambiguationFilter().non_assoc(PLUS)
        assert filt.filter(ipg.parse("n + n + n").trees) == ()
        # single application is still fine
        assert len(filt.filter(ipg.parse("n + n").trees)) == 1

    def test_assoc_on_non_recursive_rule_rejected(self):
        with pytest.raises(ValueError):
            DisambiguationFilter().left_assoc(NUM)

    def test_assoc_group(self, ipg):
        # '+' and '*' mutually left-associative: 'n + n * n' read
        # left-to-right when both at the same level
        filt = (
            DisambiguationFilter()
            .left_assoc(PLUS, group=[TIMES])
            .left_assoc(TIMES, group=[PLUS])
        )
        survivors = filt.filter(ipg.parse("n + n * n").trees)
        assert [bracketed(t) for t in survivors] == [
            "START(E(E(E(n) + E(n)) * E(n)))"
        ]


class TestPriorities:
    def test_times_binds_tighter(self, ipg):
        filt = DisambiguationFilter().priority_chain([TIMES], [PLUS])
        survivors = filt.filter(ipg.parse("n + n * n").trees)
        assert [bracketed(t) for t in survivors] == [
            "START(E(E(n) + E(E(n) * E(n))))"
        ]

    def test_chain_is_transitive(self):
        grammar = grammar_from_text(
            """
            E ::= n
            E ::= E + E
            E ::= E * E
            E ::= E ^ E
            START ::= E
            """
        )
        power = Rule(E, [E, Terminal("^"), E])
        filt = DisambiguationFilter().priority_chain([power], [TIMES], [PLUS])
        ipg = IPG(grammar)
        survivors = filt.filter(ipg.parse("n + n ^ n").trees)
        assert [bracketed(t) for t in survivors] == [
            "START(E(E(n) + E(E(n) ^ E(n))))"
        ]

    def test_full_expression_disambiguation(self, ipg):
        filt = (
            DisambiguationFilter()
            .priority_chain([TIMES], [PLUS])
            .left_assoc(PLUS)
            .left_assoc(TIMES)
        )
        result = ipg.parse("n + n * n + n")
        survivors = filt.filter(result.trees)
        assert len(survivors) == 1
        assert bracketed(survivors[0]) == (
            "START(E(E(E(n) + E(E(n) * E(n))) + E(n)))"
        )

    def test_empty_filter_keeps_everything(self, ipg):
        filt = DisambiguationFilter()
        assert filt.is_empty
        result = ipg.parse("n + n + n")
        assert filt.filter(result.trees) == result.trees


class TestFromSdf:
    TEXT = """
module calc
begin
  lexical syntax
    sorts NUM
    functions
      [0-9] -> NUM
  context-free syntax
    sorts EXP
    priorities
      EXP "*" EXP -> EXP > EXP "+" EXP -> EXP
    functions
      NUM             -> EXP
      EXP "+" EXP     -> EXP {left-assoc}
      EXP "*" EXP     -> EXP {left-assoc}
end calc
"""

    def test_filter_built_from_sdf(self):
        from repro.sdf.normalize import normalize_with_metadata
        from repro.sdf.parser import parse_sdf

        grammar, metadata = normalize_with_metadata(parse_sdf(self.TEXT))
        ipg = IPG(grammar)
        result = ipg.parse("NUM + NUM * NUM + NUM")
        assert len(result.trees) > 1
        survivors = metadata.filter.filter(result.trees)
        assert len(survivors) == 1
        tree = bracketed(survivors[0])
        assert tree == (
            "START(EXP(EXP(EXP(NUM) + EXP(EXP(NUM) * EXP(NUM))) + EXP(NUM)))"
        )

    def test_metadata_records_attributes(self):
        from repro.sdf.normalize import normalize_with_metadata
        from repro.sdf.parser import parse_sdf

        _grammar, metadata = normalize_with_metadata(parse_sdf(self.TEXT))
        attributed = {
            str(rule): words for rule, words in metadata.attributes.items()
        }
        assert attributed == {
            "EXP ::= EXP + EXP": ("left-assoc",),
            "EXP ::= EXP * EXP": ("left-assoc",),
        }

    def test_priorities_transitive_across_chains(self):
        # ^ > * and * > + declared in *separate* chains must still imply
        # ^ > + (the relation is one global partial order)
        text = """
module calc
begin
  lexical syntax
    sorts NUM
    functions
      [0-9] -> NUM
  context-free syntax
    sorts EXP
    priorities
      EXP "^" EXP -> EXP > EXP "*" EXP -> EXP,
      EXP "*" EXP -> EXP > EXP "+" EXP -> EXP
    functions
      NUM         -> EXP
      EXP "^" EXP -> EXP {right-assoc}
      EXP "*" EXP -> EXP {left-assoc}
      EXP "+" EXP -> EXP {left-assoc}
end calc
"""
        from repro.sdf.normalize import normalize_with_metadata
        from repro.sdf.parser import parse_sdf

        grammar, metadata = normalize_with_metadata(parse_sdf(text))
        ipg = IPG(grammar)
        result = ipg.parse("NUM ^ NUM + NUM")
        survivors = metadata.filter.filter(result.trees)
        assert [bracketed(t) for t in survivors] == [
            "START(EXP(EXP(EXP(NUM) ^ EXP(NUM)) + EXP(NUM)))"
        ]

    def test_corpus_sdf_metadata_is_buildable(self):
        # the ASF.sdf priorities section must at least not crash
        from repro.sdf.corpus import CORPUS
        from repro.sdf.normalize import normalize_with_metadata
        from repro.sdf.parser import parse_sdf

        _grammar, metadata = normalize_with_metadata(
            parse_sdf(CORPUS["ASF.sdf"])
        )
        assert not metadata.filter.is_empty
