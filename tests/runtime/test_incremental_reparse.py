"""Unit tests for the incremental re-parsing runtime (checkpoint/resume)."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.grammar.builders import grammar_from_text, rule_from_text
from repro.grammar.symbols import Terminal
from repro.lr.compiled import CompiledControl
from repro.runtime.forest import bracketed
from repro.runtime.incremental import Edit, IncrementalParser, splice
from repro.runtime.parallel import PoolParser

GRAMMAR_TEXT = """
    E ::= a
    E ::= b
    E ::= E + a
    E ::= E + b
    START ::= E
"""


def tokens(text: str):
    return tuple(Terminal(part) for part in text.split())


@pytest.fixture()
def setup():
    grammar = grammar_from_text(GRAMMAR_TEXT)
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    parser = IncrementalParser(control, grammar)
    pool = PoolParser(control, grammar)
    return grammar, parser, pool


class TestEdit:
    def test_apply_and_delta(self):
        base = tokens("a + a + b")
        edit = Edit(2, 3, tokens("b"))
        assert edit.apply(base) == tokens("a + b + b")
        assert edit.delta == 0
        insert = Edit(1, 1, tokens("+ a"))
        assert insert.apply(base) == tokens("a + a + a + b")
        assert insert.delta == 2
        delete = Edit(0, 2)
        assert delete.apply(base) == tokens("a + b")
        assert delete.delta == -2
        assert splice(base, edit) == edit.apply(base)

    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            Edit(-1, 0)
        with pytest.raises(ValueError):
            Edit(3, 2)
        with pytest.raises(ValueError):
            Edit(0, 99).apply(tokens("a"))

    def test_key_is_name_based(self):
        edit = Edit(1, 2, tokens("a b"))
        assert edit.key() == (1, 2, ("a", "b"))


class TestCheckpoints:
    def test_full_parse_records_every_boundary(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a + b"))
        assert base.result.accepted
        assert len(base.frontiers) == 6
        assert all(frontier is not None for frontier in base.frontiers)
        assert base.checkpoint_count == 6
        assert base.reuse["parsed_tokens"] == 5

    def test_rejected_parse_stops_recording_at_death(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + + b"))
        assert not base.result.accepted
        assert base.result.failure.token_index == 2
        # Boundaries up to the fatal sweep exist; nothing after it.
        assert base.frontiers[2] is not None
        assert base.frontiers[3] is None

    def test_resume_skips_the_prefix(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a + b + a + b"))
        out = parser.reparse(base, Edit(6, 7, tokens("a")))
        assert out.result.accepted
        assert out.reuse["resumed_at"] == 6
        assert out.reuse["reused_prefix"] == 6

    def test_recognition_converges_after_the_damage(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a + b + a + b"), build_trees=False)
        out = parser.reparse(base, Edit(2, 3, tokens("b")))
        assert out.result.accepted
        assert out.reuse["converged_at"] is not None
        assert out.reuse["parsed_tokens"] < 4

    def test_identity_edit_converges_instantly_in_tree_mode(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a + b"))
        out = parser.reparse(base, Edit(2, 2))  # no-op splice
        assert out.result.accepted
        assert out.reuse["converged_at"] == 2
        assert out.reuse["parsed_tokens"] == 0
        assert [bracketed(t) for t in out.result.trees] == [
            bracketed(t) for t in base.result.trees
        ]

    def test_converged_outcome_chains(self, setup):
        """Checkpoints adopted from the base stay valid resume points."""
        _grammar, parser, pool = setup
        stream = tokens("a + a + b + a + b")
        base = parser.parse(stream, build_trees=False)
        first = parser.reparse(base, Edit(2, 3, tokens("b")))
        assert first.reuse["converged_at"] is not None
        # Second edit lands *after* the adopted suffix checkpoints.
        second = parser.reparse(first, Edit(6, 7, tokens("b")))
        spliced = Edit(6, 7, tokens("b")).apply(first.tokens)
        assert second.result.accepted == pool.recognize(list(spliced))

    def test_edit_beyond_a_dead_base_reproduces_the_failure(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + + b + a"), build_trees=False)
        assert not base.result.accepted
        out = parser.reparse(base, Edit(4, 5, tokens("b")))
        assert not out.result.accepted
        assert out.result.failure.token_index == 2
        assert out.reuse["resumed_at"] <= 2

    def test_length_changing_rejection_shifts_the_failure_index(self, setup):
        _grammar, parser, pool = setup
        stream = tokens("a + a + + b")
        base = parser.parse(stream, build_trees=False)
        assert base.result.failure.token_index == 4
        # Insert two tokens before the error: index must shift by +2.
        edit = Edit(0, 0, tokens("a +"))
        out = parser.reparse(base, edit)
        scratch = pool.recognize_result(list(edit.apply(stream)))
        assert not out.result.accepted
        assert out.result.failure.token_index == scratch.failure.token_index == 6

    def test_empty_input_edits(self, setup):
        _grammar, parser, pool = setup
        base = parser.parse(())
        assert base.result.accepted == pool.recognize([])
        grown = parser.reparse(base, Edit(0, 0, tokens("a")))
        assert grown.result.accepted
        shrunk = parser.reparse(grown, Edit(0, 1))
        assert shrunk.result.accepted == pool.recognize([])


class TestForestCap:
    def test_long_edit_chains_do_not_grow_the_forest_unboundedly(self, setup):
        _grammar, parser, pool = setup
        stream = tokens("a" + " + a" * 20)
        outcome = parser.parse(stream)
        cap = 64 * (len(stream) + 16)
        for index in range(220):
            site = 2 * (index % 20)
            replacement = tokens("b" if index % 2 == 0 else "a")
            outcome = parser.reparse(outcome, Edit(site, site + 1, replacement))
            assert outcome.result.accepted
            assert outcome.forest.size <= cap + 4 * len(stream)
        # Still equivalent to a from-scratch parse after the chain.
        scratch = pool.parse(list(outcome.tokens))
        assert sorted(bracketed(t) for t in outcome.result.trees) == sorted(
            bracketed(t) for t in scratch.trees
        )


class TestInvalidation:
    def test_grammar_edit_bumps_epoch_and_falls_back(self, setup):
        grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a"))
        epoch = parser.epoch
        grammar.add_rule(rule_from_text("E ::= E + c", {"E"}))
        assert parser.epoch == epoch + 1
        out = parser.reparse(base, Edit(2, 3, tokens("c")))
        assert out.reuse["fallback"] == "grammar-modified"
        assert out.result.accepted

    def test_foreign_checkpoint_falls_back(self, setup):
        grammar, parser, _pool = setup
        other = IncrementalParser(parser.control, grammar)
        base = other.parse(tokens("a + a"))
        out = parser.reparse(base, Edit(0, 1, tokens("b")))
        assert out.reuse["fallback"] == "foreign-checkpoint"
        assert out.result.accepted
        other.close()

    def test_mode_change_falls_back(self, setup):
        _grammar, parser, _pool = setup
        base = parser.parse(tokens("a + a"), build_trees=False)
        out = parser.reparse(base, Edit(0, 1, tokens("b")), build_trees=True)
        assert out.reuse["fallback"] == "mode-changed"
        assert out.result.accepted
        assert out.result.trees

    def test_close_detaches_the_observer(self, setup):
        grammar, parser, _pool = setup
        parser.close()
        epoch = parser.epoch
        grammar.add_rule(rule_from_text("E ::= d", {"E"}))
        assert parser.epoch == epoch

    def test_reparse_requires_an_outcome(self, setup):
        _grammar, parser, _pool = setup
        with pytest.raises(TypeError):
            parser.reparse(None, Edit(0, 0))
