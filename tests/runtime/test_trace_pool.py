"""Tracing the parallel parser, and the trace API itself."""

import pytest

from repro.lr.generator import ConventionalGenerator
from repro.runtime.parallel import PoolParser
from repro.runtime.trace import Trace, TraceEvent

from ..conftest import toks


@pytest.fixture()
def pool(booleans):
    control = ConventionalGenerator(booleans).generate()
    return PoolParser(control, booleans)


class TestPoolTracing:
    def test_events_recorded(self, pool):
        trace = Trace()
        result = pool.parse(toks("true and false"), trace=trace)
        assert result.accepted
        kinds = set(trace.kinds())
        assert {"shift", "reduce", "accept"} <= kinds

    def test_fork_produces_interleaved_events(self, pool):
        # an ambiguous sentence forks: more events than the deterministic
        # move count for the same input
        short = Trace()
        pool.parse(toks("true and false"), trace=short)
        forked = Trace()
        pool.parse(toks("true and false and true"), trace=forked)
        assert len(forked) > len(short)

    def test_rejected_input_has_no_accept_event(self, pool):
        trace = Trace()
        result = pool.parse(toks("true or"), trace=trace)
        assert not result.accepted
        assert "accept" not in trace.kinds()

    def test_trace_off_by_default(self, pool):
        # just documents that passing no trace is fine
        assert pool.parse(toks("true")).accepted


class TestTraceApi:
    def test_event_repr_mentions_fields(self, booleans):
        from repro.grammar.rules import Rule
        from repro.grammar.symbols import NonTerminal, Terminal

        event = TraceEvent(
            "reduce",
            state=7,
            rule=Rule(NonTerminal("B"), [Terminal("true")]),
            target=1,
        )
        rendered = repr(event)
        assert "reduce" in rendered
        assert "B ::= true" in rendered
        assert "7" in rendered and "1" in rendered

    def test_moves_use_state_uids(self, pool):
        trace = Trace()
        pool.parse(toks("true"), trace=trace)
        for _kind, state in trace.moves():
            assert isinstance(state, int)

    def test_render_one_line_per_event(self, pool):
        trace = Trace()
        pool.parse(toks("true"), trace=trace)
        assert len(trace.render().splitlines()) == len(trace)


class TestEventSerialization:
    def test_to_dict_is_jsonable_and_keyed_by_kind(self, pool):
        import json

        trace = Trace()
        pool.parse(toks("true and false"), trace=trace)
        payloads = [event.to_dict() for event in trace.events]
        json.dumps(payloads)  # states by uid, symbols/rules by str
        for payload in payloads:
            assert isinstance(payload["state"], int)
            assert payload["kind"] in {
                "shift", "reduce", "goto", "accept", "die", "fork",
            }
            assert "parser_id" in payload

    def test_optional_fields_are_omitted_not_null(self):
        payload = TraceEvent("die", state=3).to_dict()
        assert payload == {"kind": "die", "state": 3, "parser_id": 0}

    def test_shift_events_carry_the_token_position(self, pool):
        trace = Trace()
        pool.parse(toks("true and false"), trace=trace)
        shifts = [e for e in trace.events if e.kind == "shift"]
        assert [e.position for e in shifts] == [0, 1, 2]
        assert [str(e.symbol) for e in shifts] == ["true", "and", "false"]

    def test_positions_round_trip_through_to_dict(self, pool):
        trace = Trace()
        pool.parse(toks("true or false"), trace=trace)
        for event in trace.events:
            payload = event.to_dict()
            assert payload.get("position") == event.position
            if event.position is not None:
                # end-of-input moves sit on the $ marker at index 3
                assert 0 <= event.position <= 3

    def test_rule_and_target_serialize_as_text_and_uid(self, pool):
        trace = Trace()
        pool.parse(toks("true"), trace=trace)
        reduces = [e for e in trace.events if e.kind == "reduce"]
        assert reduces
        payload = reduces[0].to_dict()
        assert payload["rule"] == "B ::= true"
        assert isinstance(payload["target"], int)
