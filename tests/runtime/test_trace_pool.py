"""Tracing the parallel parser, and the trace API itself."""

import pytest

from repro.lr.generator import ConventionalGenerator
from repro.runtime.parallel import PoolParser
from repro.runtime.trace import Trace, TraceEvent

from ..conftest import toks


@pytest.fixture()
def pool(booleans):
    control = ConventionalGenerator(booleans).generate()
    return PoolParser(control, booleans)


class TestPoolTracing:
    def test_events_recorded(self, pool):
        trace = Trace()
        result = pool.parse(toks("true and false"), trace=trace)
        assert result.accepted
        kinds = set(trace.kinds())
        assert {"shift", "reduce", "accept"} <= kinds

    def test_fork_produces_interleaved_events(self, pool):
        # an ambiguous sentence forks: more events than the deterministic
        # move count for the same input
        short = Trace()
        pool.parse(toks("true and false"), trace=short)
        forked = Trace()
        pool.parse(toks("true and false and true"), trace=forked)
        assert len(forked) > len(short)

    def test_rejected_input_has_no_accept_event(self, pool):
        trace = Trace()
        result = pool.parse(toks("true or"), trace=trace)
        assert not result.accepted
        assert "accept" not in trace.kinds()

    def test_trace_off_by_default(self, pool):
        # just documents that passing no trace is fine
        assert pool.parse(toks("true")).accepted


class TestTraceApi:
    def test_event_repr_mentions_fields(self, booleans):
        from repro.grammar.rules import Rule
        from repro.grammar.symbols import NonTerminal, Terminal

        event = TraceEvent(
            "reduce",
            state=7,
            rule=Rule(NonTerminal("B"), [Terminal("true")]),
            target=1,
        )
        rendered = repr(event)
        assert "reduce" in rendered
        assert "B ::= true" in rendered
        assert "7" in rendered and "1" in rendered

    def test_moves_use_state_uids(self, pool):
        trace = Trace()
        pool.parse(toks("true"), trace=trace)
        for _kind, state in trace.moves():
            assert isinstance(state, int)

    def test_render_one_line_per_event(self, pool):
        trace = Trace()
        pool.parse(toks("true"), trace=trace)
        assert len(trace.render().splitlines()) == len(trace)
