"""The metrics registry: instruments, collectors, snapshots, merging.

Every test uses a fresh private :class:`MetricsRegistry` — the process
global ``obs.REGISTRY`` holds module-cached instruments (language,
dispatcher) and must never be reset.
"""

from __future__ import annotations

import gc

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry, sample_key


class TestSampleKey:
    def test_bare_name(self):
        assert sample_key("repro.parse.requests") == "repro.parse.requests"

    def test_labels_are_sorted(self):
        key = sample_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'


class TestInstruments:
    def test_counter_increments_and_samples(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.snapshot()["hits"] == {
            "type": "counter",
            "value": 5,
            "name": "hits",
            "labels": {},
        }

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", shard="0") is registry.counter("c", shard="0")
        assert registry.counter("c", shard="0") is not registry.counter("c", shard="1")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0
        assert registry.snapshot()["depth"]["type"] == "gauge"

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 99.0):
            histogram.observe(value)
        entry = registry.snapshot()["lat"]
        assert entry["type"] == "histogram"
        # non-cumulative per-bucket counts, overflow separate
        assert entry["buckets"] == [[0.01, 1], [0.1, 2], [1.0, 1]]
        assert entry["inf"] == 1
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(99.605)

    def test_histogram_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_labels_reach_the_snapshot_key(self):
        registry = MetricsRegistry()
        registry.counter("reqs", cmd="parse").inc()
        assert 'reqs{cmd="parse"}' in registry.snapshot()


class TestCollectors:
    def test_plain_collector_polled_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.register_collector(
            lambda: [("ext.count", None, "counter", state["n"])]
        )
        assert registry.snapshot()["ext.count"]["value"] == 1
        state["n"] = 7  # collectors see live state, not registration-time state
        assert registry.snapshot()["ext.count"]["value"] == 7

    def test_two_owners_feeding_one_series_are_summed(self):
        registry = MetricsRegistry()
        for amount in (2, 3):
            registry.register_collector(
                lambda amount=amount: [("ext.count", None, "counter", amount)]
            )
        assert registry.snapshot()["ext.count"]["value"] == 5

    def test_object_collector_dies_with_its_owner(self):
        registry = MetricsRegistry()

        class Owner:
            size = 11

        owner = Owner()
        registry.register_object_collector(
            owner, lambda o: [("owner.size", None, "gauge", o.size)]
        )
        assert registry.snapshot()["owner.size"]["value"] == 11
        del owner
        gc.collect()
        assert "owner.size" not in registry.snapshot()

    def test_collected_sample_merges_into_instrument_series(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.register_collector(lambda: [("hits", None, "counter", 3)])
        assert registry.snapshot()["hits"]["value"] == 5


class TestMerge:
    def test_counters_and_gauges_sum(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(0.5)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 2.0

    def test_histograms_merge_bucket_wise(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        b = MetricsRegistry()
        hist = b.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.5)
        hist.observe(50.0)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        entry = merged["h"]
        assert entry["buckets"] == [[0.1, 1], [1.0, 1]]
        assert entry["inf"] == 1
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(50.55)

    def test_merge_does_not_mutate_inputs(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1,)).observe(0.05)
        snap_a = a.snapshot()
        before = [list(pair) for pair in snap_a["h"]["buckets"]]
        MetricsRegistry.merge([snap_a, snap_a])
        assert snap_a["h"]["buckets"] == before

    def test_disjoint_series_pass_through(self):
        a = MetricsRegistry()
        a.counter("only.a").inc()
        b = MetricsRegistry()
        b.counter("only.b").inc(2)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["only.a"]["value"] == 1
        assert merged["only.b"]["value"] == 2

    def test_non_dict_snapshots_are_skipped(self):
        a = MetricsRegistry()
        a.counter("c").inc()
        merged = MetricsRegistry.merge([a.snapshot(), None, "bogus"])
        assert merged["c"]["value"] == 1
