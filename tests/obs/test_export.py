"""Exporters: Prometheus text exposition format and JSON rendering."""

from __future__ import annotations

import json

from repro.obs.export import prometheus_name, render_json, render_prometheus
from repro.obs.registry import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro.parse.requests", engine="compiled").inc(4)
    registry.gauge("repro.lazy.table_fraction").set(0.6)
    histogram = registry.histogram("repro.shard.request.seconds",
                                   buckets=(0.01, 0.1), shard="0")
    histogram.observe(0.005)
    histogram.observe(0.05)
    histogram.observe(5.0)
    return registry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("repro.result_cache.hits") == "repro_result_cache_hits"

    def test_invalid_characters_are_sanitized(self):
        assert prometheus_name("a-b c") == "a_b_c"

    def test_leading_digit_is_prefixed(self):
        assert prometheus_name("2fast") == "_2fast"


class TestRenderPrometheus:
    def test_type_lines_and_values(self):
        text = render_prometheus(_sample_registry().snapshot())
        assert "# TYPE repro_parse_requests counter" in text
        assert 'repro_parse_requests{engine="compiled"} 4\n' in text
        assert "# TYPE repro_lazy_table_fraction gauge" in text
        assert "repro_lazy_table_fraction 0.6" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(_sample_registry().snapshot())
        assert 'repro_shard_request_seconds_bucket{shard="0",le="0.01"} 1' in text
        assert 'repro_shard_request_seconds_bucket{shard="0",le="0.1"} 2' in text
        assert 'repro_shard_request_seconds_bucket{shard="0",le="+Inf"} 3' in text
        assert 'repro_shard_request_seconds_count{shard="0"} 3' in text
        assert 'repro_shard_request_seconds_sum{shard="0"} 5.055' in text

    def test_type_line_emitted_once_per_series_family(self):
        registry = MetricsRegistry()
        registry.counter("reqs", cmd="parse").inc()
        registry.counter("reqs", cmd="open").inc()
        text = render_prometheus(registry.snapshot())
        assert text.count("# TYPE reqs counter") == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m", why='say "hi"\nagain').inc()
        text = render_prometheus(registry.snapshot())
        assert r'why="say \"hi\"\nagain"' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_output_is_newline_terminated_with_type_first(self):
        text = render_prometheus(_sample_registry().snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        for family in ("repro_parse_requests", "repro_lazy_table_fraction",
                       "repro_shard_request_seconds"):
            first = next(i for i, line in enumerate(lines) if family in line)
            assert lines[first].startswith(f"# TYPE {family} ")


class TestRenderJson:
    def test_round_trips_through_json(self):
        snapshot = _sample_registry().snapshot()
        decoded = json.loads(render_json(snapshot))
        assert decoded == json.loads(json.dumps(snapshot))
        assert decoded['repro.parse.requests{engine="compiled"}']["value"] == 4

    def test_keys_are_sorted(self):
        text = render_json(_sample_registry().snapshot())
        keys = [line.strip().split(":")[0] for line in text.splitlines()
                if line.startswith('  "')]
        assert keys == sorted(keys)
