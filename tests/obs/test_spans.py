"""Spans: the no-op disabled path, tracing, nesting, the ring, the slow log."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN


@pytest.fixture(autouse=True)
def _restore_tracing():
    """Every test leaves tracing, the ring and the slow log as it found them."""
    was_tracing = obs.tracing_enabled()
    yield
    obs.set_tracing(was_tracing)
    obs.set_slow_threshold(None)
    obs.set_slow_sink(None)
    obs.clear_spans()


class TestDisabledPath:
    def test_span_returns_shared_null_handle(self):
        obs.set_tracing(False)
        handle = obs.span("parse", tokens=3)
        assert handle is NULL_SPAN
        assert handle.recording is False
        # identical object every call — nothing allocates
        assert obs.span("other") is handle

    def test_null_span_is_inert(self):
        with obs.span("parse") as sp:
            sp.set(tokens=1)  # swallowed
        assert NULL_SPAN.attributes == {}
        assert obs.recent_spans() == []

    def test_annotate_without_open_span_is_noop(self):
        obs.annotate(cache=True)  # must not raise
        assert obs.current_span() is NULL_SPAN


class TestRecording:
    def test_nesting_builds_a_tree_and_publishes_the_root(self):
        obs.set_tracing(True)
        obs.clear_spans()
        with obs.span("request", cmd="parse") as root:
            with obs.span("tokenize") as inner:
                inner.set(tokens=3)
            with obs.span("engine", engine="compiled"):
                pass
        assert root.recording is True
        assert [child.name for child in root.children] == ["tokenize", "engine"]
        assert root.children[0].attributes == {"tokens": 3}
        published = obs.recent_spans()
        assert len(published) == 1
        tree = published[0]
        assert tree["name"] == "request"
        assert tree["attributes"] == {"cmd": "parse"}
        assert [c["name"] for c in tree["children"]] == ["tokenize", "engine"]

    def test_durations_are_monotonic_and_nested(self):
        obs.set_tracing(True)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0

    def test_annotate_targets_the_innermost_open_span(self):
        obs.set_tracing(True)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                obs.annotate(cache=True)
        assert inner.attributes == {"cache": True}
        assert "cache" not in outer.attributes

    def test_to_dict_omits_empty_fields(self):
        obs.set_tracing(True)
        with obs.span("bare") as sp:
            pass
        tree = sp.to_dict()
        assert tree["name"] == "bare"
        assert "attributes" not in tree
        assert "children" not in tree


class TestForcedTracing:
    def test_trace_records_while_global_switch_is_off(self):
        obs.set_tracing(False)
        obs.clear_spans()
        with obs.trace("request", cmd="parse") as root:
            with obs.span("child"):
                pass
        assert [c.name for c in root.children] == ["child"]
        assert len(obs.recent_spans()) == 1
        # and the switch is still off afterwards
        assert obs.span("after") is NULL_SPAN

    def test_trace_is_per_thread(self):
        obs.set_tracing(False)
        seen = {}

        def other_thread():
            seen["handle"] = obs.span("elsewhere")

        with obs.trace("request"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["handle"] is NULL_SPAN


class TestRing:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        obs.set_tracing(True)
        obs.clear_spans()
        obs.set_ring_capacity(4)
        try:
            for index in range(10):
                with obs.span("root", index=index):
                    pass
            kept = obs.recent_spans()
            assert len(kept) == 4
            assert [t["attributes"]["index"] for t in kept] == [6, 7, 8, 9]
            assert len(obs.recent_spans(limit=2)) == 2
        finally:
            obs.set_ring_capacity(256)

    def test_only_roots_are_published(self):
        obs.set_tracing(True)
        obs.clear_spans()
        with obs.span("root"):
            with obs.span("child"):
                pass
        assert [t["name"] for t in obs.recent_spans()] == ["root"]


class TestSlowLog:
    def test_threshold_activates_recording_and_logs(self):
        obs.set_tracing(False)
        captured = []
        obs.set_slow_sink(captured.append)
        obs.set_slow_threshold(0.0)  # everything is "slow"
        with obs.span("request") as sp:
            with obs.span("engine", engine="lazy"):
                pass
        assert sp.recording is True
        assert len(captured) == 1
        assert "slow request" in captured[0]
        assert "engine" in captured[0]

    def test_disabling_the_threshold_restores_the_null_path(self):
        obs.set_slow_threshold(5.0)
        assert obs.span("on").recording is True
        obs.set_slow_threshold(None)
        assert obs.span("off") is NULL_SPAN

    def test_fast_requests_are_not_logged(self):
        captured = []
        obs.set_slow_sink(captured.append)
        obs.set_slow_threshold(60_000.0)  # one minute: nothing qualifies
        with obs.span("request"):
            pass
        assert captured == []

    def test_render_span_tree_indents_children(self):
        text = obs.render_span_tree(
            {
                "name": "request",
                "duration": 0.002,
                "children": [
                    {"name": "parse", "duration": 0.001, "attributes": {"tokens": 3}}
                ],
            }
        )
        lines = text.splitlines()
        assert lines[0].startswith("request 2.000ms")
        assert lines[1].startswith("  parse 1.000ms")
        assert "tokens=3" in lines[1]
