"""The interactive REPL, driven through scripted sessions."""

import json
import subprocess
import sys

import pytest

from repro.cli import ReplSession, main, run_session


class TestSession:
    def test_build_and_parse(self):
        output = run_session(
            [
                "add B ::= true",
                "add B ::= B or B",
                "add START ::= B",
                "parse true or true",
            ]
        )
        assert any("accepted (1 parse)" in line for line in output)
        assert any("B(B(true) or B(true))" in line for line in output)

    def test_ambiguous_parse_lists_every_tree(self):
        output = run_session(
            [
                "add E ::= n",
                "add E ::= E + E",
                "add START ::= E",
                "parse n + n + n",
            ]
        )
        assert any("accepted (2 parses)" in line for line in output)

    def test_trees_toggle(self):
        output = run_session(
            [
                "add B ::= x",
                "add START ::= B",
                "trees off",
                "parse x",
            ]
        )
        assert not any("B(x)" in line for line in output)

    def test_incremental_edit_cycle(self):
        output = run_session(
            [
                "add B ::= true",
                "add START ::= B",
                "recognize unknown",
                "add B ::= unknown",
                "recognize unknown",
                "delete B ::= unknown",
                "recognize unknown",
            ]
        )
        verdicts = [line for line in output if line in ("accepted", "rejected")]
        assert verdicts == ["rejected", "accepted", "rejected"]

    def test_sort_declaration_for_forward_reference(self):
        output = run_session(
            [
                "sort N",
                "add CMD ::= turn N",
                "add N ::= 1",
                "add START ::= CMD",
                "recognize turn 1",
            ]
        )
        assert output[-1] == "accepted"

    def test_show_and_summary_and_fraction(self):
        output = run_session(
            [
                "add B ::= x",
                "add START ::= B",
                "parse x",
                "show",
                "summary",
                "fraction",
            ]
        )
        assert any("B ::= x" in line for line in output)
        assert any("states=" in line for line in output)
        assert any("% of the full table" in line for line in output)

    def test_gc_command(self):
        output = run_session(
            [
                "add B ::= x",
                "add START ::= B",
                "parse x",
                "gc",
            ]
        )
        assert any("reclaimed" in line for line in output)

    def test_errors_are_reported_not_raised(self):
        output = run_session(["add B -> x"])
        assert any(line.startswith("error:") for line in output)

    def test_unknown_command(self):
        output = run_session(["frobnicate"])
        assert "unknown command" in output[0]

    def test_help_and_quit(self):
        session = ReplSession()
        assert "commands:" in session.execute("help")[0]
        assert session.execute("quit") == ["bye"]
        assert session.finished

    def test_blank_lines_and_comments_ignored(self):
        assert run_session(["", "   ", "# nothing"]) == []

    def test_parse_before_start_rule(self):
        output = run_session(["parse x"])
        assert output == ["rejected"]

    def test_fraction_before_start_rule(self):
        assert run_session(["fraction"]) == ["no START rule yet"]

    def test_duplicate_add_reported(self):
        output = run_session(["add B ::= x", "add B ::= x"])
        assert output[-1] == "(rule already present)"

    def test_delete_missing_reported(self):
        assert run_session(["delete B ::= x"]) == ["(no such rule)"]

    def test_rejection_prints_expected_set(self):
        output = run_session(
            [
                "add B ::= true",
                "add B ::= false",
                "add START ::= B",
                "parse true true",
            ]
        )
        assert output[-2] == "rejected"
        assert "expected:" in output[-1] and "$" in output[-1]


class TestEngineCommand:
    def test_listing_marks_the_default(self):
        output = run_session(["engine"])
        assert any(line.startswith("* compiled") for line in output)
        assert sum(line.startswith("*") for line in output) == 1

    def test_switching_engines(self):
        output = run_session(
            [
                "add B ::= x",
                "add START ::= B",
                "engine earley",
                "parse x",
                "recognize y",
            ]
        )
        assert "engine set to earley" in output
        assert any("builds no trees" in line for line in output)
        assert output[-2] == "rejected"

    def test_unknown_engine_reported(self):
        output = run_session(["engine warp"])
        assert "unknown engine" in output[0]


class TestLexerCommand:
    def test_show_current(self):
        output = run_session(["lexer"])
        assert output[0].startswith("lexer: whitespace")

    def test_scanner_lexes_punctuation_without_blanks(self):
        output = run_session(
            [
                "sort E T F",
                "add E ::= E + T",
                "add E ::= T",
                "add T ::= T * F",
                "add T ::= F",
                "add F ::= n",
                "add F ::= ( E )",
                "add START ::= E",
                "lexer scanner",
                "recognize (n+n)*n",
            ]
        )
        assert output[-1] == "accepted"

    def test_scanner_follows_live_edits(self):
        output = run_session(
            [
                "add B ::= x",
                "add START ::= B",
                "lexer scanner",
                "recognize x",
                "add B ::= B y B",
                "recognize xyx",
                "lexer whitespace",
                "recognize x",
            ]
        )
        verdicts = [line for line in output if line in ("accepted", "rejected")]
        assert verdicts == ["accepted", "accepted", "accepted"]

    def test_usage_message(self):
        assert run_session(["lexer klingon"]) == [
            "usage: lexer [whitespace|scanner]"
        ]


class TestProcessEntryPoint:
    def test_python_dash_m_repro(self):
        script = "add B ::= hi\nadd START ::= B\nrecognize hi\nquit\n"
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            input=script,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "accepted" in completed.stdout
        assert "bye" in completed.stdout


class TestEditCommand:
    GRAMMAR = [
        "add E ::= a",
        "add E ::= b",
        "add E ::= E + a",
        "add E ::= E + b",
        "add START ::= E",
    ]

    def test_edit_reparses_incrementally(self):
        out = run_session(self.GRAMMAR + ["parse a + a + a", "edit 2 3 b"])
        assert "edited [2:3] -> 'b' (re-parsed 3 of 5 tokens)" in out
        assert "  START(E(E(E(a) + b) + a))" in out

    def test_edit_after_recognize(self):
        out = run_session(self.GRAMMAR + ["recognize a + a", "edit 2 3 b"])
        assert out[-1] == "accepted"

    def test_edit_converges_without_reparsing_the_suffix(self):
        out = run_session(self.GRAMMAR + ["recognize a + a + b + a", "edit 0 0"])
        assert any("converged at token 0" in line for line in out)

    def test_edit_chain_uses_previous_result(self):
        out = run_session(
            self.GRAMMAR + ["parse a + a", "edit 2 3 b", "edit 0 1 b"]
        )
        assert "  START(E(E(b) + b))" in out

    def test_edit_without_a_previous_parse(self):
        assert run_session(["edit 0 0"]) == [
            "nothing to edit — parse or recognize an input first"
        ]

    def test_edit_usage_errors(self):
        out = run_session(self.GRAMMAR + ["parse a", "edit x y", "edit 1"])
        assert out.count("usage: edit <start> <end> [replacement tokens...]") == 2

    def test_edit_out_of_range_reported(self):
        out = run_session(self.GRAMMAR + ["parse a", "edit 0 9 b"])
        assert any(line.startswith("error: edit range") for line in out)

    def test_rejecting_edit_prints_diagnostic(self):
        out = run_session(self.GRAMMAR + ["parse a + a", "edit 1 2 b"])
        assert "rejected" in out
        assert any("expected" in line for line in out)


class TestTraceCommand:
    GRAMMAR = [
        "sort B",  # B is used before its rules exist
        "add START ::= B",
        "add B ::= true",
        "add B ::= false",
        "add B ::= B or B",
    ]

    def test_accepted_trace_lists_moves_with_positions(self):
        out = run_session(self.GRAMMAR + ["trace true or false"])
        assert any(
            line.startswith("accepted — ") and "(engine compiled)" in line
            for line in out
        )
        shifts = [line for line in out if line.strip().startswith("shift")]
        assert shifts
        assert "token 0 'true' at line 1, column 1" in shifts[0]
        assert any("rule=(B ::= true)" in line for line in out)
        assert any(line.strip().startswith("accept") for line in out)

    def test_rejected_trace_keeps_the_diagnostic(self):
        out = run_session(self.GRAMMAR + ["trace true or or"])
        assert any(line.startswith("rejected — ") for line in out)
        assert any("expected" in line for line in out)

    def test_usage_without_tokens(self):
        assert run_session(["trace"]) == ["usage: trace <tokens>"]

    def test_engine_without_lr_moves_says_so(self):
        out = run_session(self.GRAMMAR + ["engine earley", "trace true"])
        assert any("records no LR moves" in line for line in out)

    def test_trace_does_not_disturb_the_edit_base(self):
        out = run_session(
            self.GRAMMAR
            + ["parse true or false", "trace false", "edit 0 1 false"]
        )
        assert any(line.startswith("edited [0:1]") for line in out)


class TestObsCommand:
    @pytest.fixture(autouse=True)
    def _restore_slowlog(self):
        yield
        from repro import obs

        obs.set_slow_threshold(None)

    def test_demo_prints_a_prometheus_catalog(self, capsys):
        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_lazy_table_fraction gauge" in out
        assert "repro_service_requests" in out
        assert 'repro_incremental_reparse{outcome="resumed"' in out

    def test_json_format_with_spans(self, capsys):
        assert main(["obs", "--format", "json", "--spans", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "spans" in payload
        assert payload["metrics"]["repro.lazy.table_fraction"]["value"] > 0
        assert any(tree["name"] == "request" for tree in payload["spans"])

    def test_spans_render_to_stderr_in_prometheus_mode(self, capsys):
        assert main(["obs", "--spans", "2"]) == 0
        captured = capsys.readouterr()
        assert "request" in captured.err
        assert "# TYPE" not in captured.err

    def test_negative_slow_ms_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["obs", "--slow-ms", "-1"])
        assert "--slow-ms must be non-negative" in capsys.readouterr().err


class TestServeFlagValidation:
    def test_negative_slow_ms_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--slow-ms", "-0.5"])
        assert "--slow-ms must be non-negative" in capsys.readouterr().err
