"""The batch-parse pipeline: distillation, windows, retries, resume."""

import threading
from concurrent.futures import Future

import pytest

from repro.corpus.pipeline import ParseJob, distill, is_retryable
from repro.corpus.store import DocumentStore, ParseJournal, ResultStore


class TestDistill:
    def test_accepted_counts_nonterminals_and_strips_request_fields(self):
        payload = distill(
            {
                "accepted": True,
                "engine": "compiled",
                "trees": ["START(B(B(true) or B(false)))"],
                "tree_count": 1,
                "cache": False,
                "session": "corpus:demo:0",
                "version": 4,
                "time": 0.01,
            }
        )
        assert payload == {
            "accepted": True,
            "engine": "compiled",
            "trees": ["START(B(B(true) or B(false)))"],
            "tree_count": 1,
            "nonterminals": {"START": 1, "B": 3},
        }

    def test_rejected_keeps_diagnostics(self):
        diagnostics = {"message": "unexpected 'or'", "expected": ["true"]}
        payload = distill(
            {"accepted": False, "diagnostics": diagnostics, "time": 0.01}
        )
        assert payload == {"accepted": False, "diagnostics": diagnostics}

    def test_identical_structure_identical_payload(self):
        """The hash-consing premise: responses differing only in request
        bookkeeping distill to byte-identical payloads."""
        a = distill({"accepted": True, "trees": ["START(B(true))"], "time": 1.0})
        b = distill({"accepted": True, "trees": ["START(B(true))"], "time": 2.0})
        assert a == b

    def test_is_retryable(self):
        assert is_retryable({"error": "shard-restarting", "retry_after_ms": 5})
        assert is_retryable({"error": "queue full", "overloaded": True})
        assert not is_retryable({"error": "shard-degraded"})
        assert not is_retryable({"accepted": True})


def make_stores(tmp_path, texts):
    directory = str(tmp_path / "c")
    docs = DocumentStore(directory)
    results = ResultStore(directory)
    journal = ParseJournal(str(tmp_path / "c" / "parse.log"))
    docs.add_many([(f"d{i}", text) for i, text in enumerate(texts)])
    return docs, results, journal


def resolved(response):
    future = Future()
    future.set_result(response)
    return future


class FakeService:
    """A submit() target scripted per tokens-text."""

    def __init__(self, script=None):
        self.script = script or {}
        self.requests = []
        self.lock = threading.Lock()

    def submit(self, request):
        with self.lock:
            self.requests.append(dict(request))
        answers = self.script.get(request["tokens"])
        if answers:
            return resolved(answers.pop(0))
        return resolved({"accepted": True, "trees": [f"START({request['tokens']})"]})


class TestParseJob:
    def test_drains_all_documents_and_journals(self, tmp_path):
        docs, results, journal = make_stores(tmp_path, ["alpha", "beta", "gamma"])
        service = FakeService()
        job = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["corpus:demo:0"],
        )
        job.start()
        assert job.wait(30)
        status = job.status()
        assert status["state"] == "done"
        assert status["done"] == status["total"] == 3
        assert status["parsed_this_run"] == 3
        assert status["resumed"] == 0
        assert journal.duplicates == 0
        # Every request was polite batch traffic: cache bypass, no deadline.
        for request in service.requests:
            assert request["cache"] is False
            assert request["deadline_ms"] is None

    def test_round_robin_across_sessions(self, tmp_path):
        docs, results, journal = make_stores(
            tmp_path, [f"doc {i}" for i in range(6)]
        )
        service = FakeService()
        job = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s0", "s1"],
        )
        job.start()
        assert job.wait(30)
        assert {r["session"] for r in service.requests} == {"s0", "s1"}

    def test_resume_skips_journaled_documents(self, tmp_path):
        docs, results, journal = make_stores(tmp_path, ["alpha", "beta", "gamma"])
        service = FakeService()
        first = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s"],
        )
        first.start()
        assert first.wait(30)
        parsed_after_first = len(service.requests)
        assert parsed_after_first == 3
        # Second job over the same journal: nothing left to do, and no
        # document is ever submitted twice.
        second = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s"],
        )
        second.start()
        assert second.wait(30)
        status = second.status()
        assert status["resumed"] == 3
        assert status["parsed_this_run"] == 0
        assert len(service.requests) == parsed_after_first
        assert journal.duplicates == 0

    def test_retryable_answers_requeue_with_backoff(self, tmp_path):
        docs, results, journal = make_stores(tmp_path, ["flaky"])
        service = FakeService(
            script={
                "flaky": [
                    {"error": "shard-restarting", "retry_after_ms": 1},
                    {"error": "overloaded", "overloaded": True},
                    {"accepted": True, "trees": ["START(flaky)"]},
                ]
            }
        )
        job = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s"],
        )
        job.start()
        assert job.wait(30)
        status = job.status()
        assert status["state"] == "done"
        assert status["retries"] == 2
        assert status["done"] == 1
        assert journal.duplicates == 0

    def test_terminal_error_fails_the_job(self, tmp_path):
        docs, results, journal = make_stores(tmp_path, ["doomed"])
        service = FakeService(script={"doomed": [{"error": "shard-degraded"}]})
        job = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s"],
        )
        job.start()
        assert job.wait(30)
        status = job.status()
        assert status["state"] == "failed"
        assert "shard-degraded" in status["job_error"]
        assert "doomed" not in str(journal.entries)

    def test_window_bounds_in_flight(self, tmp_path):
        docs, results, journal = make_stores(
            tmp_path, [f"text {i}" for i in range(10)]
        )
        gate = threading.Event()
        peak = [0]
        live = [0]
        lock = threading.Lock()

        class Blocking:
            def submit(self, request):
                with lock:
                    live[0] += 1
                    peak[0] = max(peak[0], live[0])
                future = Future()

                def finish():
                    gate.wait(30)
                    with lock:
                        live[0] -= 1
                    future.set_result(
                        {"accepted": True, "trees": ["START(x)"]}
                    )

                threading.Thread(target=finish, daemon=True).start()
                return future

        job = ParseJob(
            "demo", docs, results, journal,
            submit=Blocking().submit, sessions=["s"], window=3,
        )
        job.start()
        # Let the drain loop fill its window against the blocked service.
        deadline = threading.Event()
        deadline.wait(0.2)
        gate.set()
        assert job.wait(30)
        assert peak[0] <= 3
        assert job.status()["done"] == 10

    def test_hash_consed_results_share_storage(self, tmp_path):
        # Ten documents, two distinct parse structures -> two result files.
        docs, results, journal = make_stores(
            tmp_path, [f"text {i}" for i in range(10)]
        )
        service = FakeService(
            script={
                f"text {i}": [
                    {"accepted": True, "trees": [f"START(shape{i % 2})"]}
                ]
                for i in range(10)
            }
        )
        job = ParseJob(
            "demo", docs, results, journal,
            submit=service.submit, sessions=["s"],
        )
        job.start()
        assert job.wait(30)
        assert len(results) == 2
        assert results.puts == 10
        assert results.dedup_hits == 8
        assert results.dedup_ratio() == pytest.approx(0.8)

    def test_needs_at_least_one_session(self, tmp_path):
        docs, results, journal = make_stores(tmp_path, ["x"])
        with pytest.raises(ValueError, match="at least one worker session"):
            ParseJob(
                "demo", docs, results, journal,
                submit=lambda request: resolved({}), sessions=[],
            )
