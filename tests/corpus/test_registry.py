"""The persistent corpus registry: naming, immutability, reload."""

import pytest

from repro.corpus.registry import CorpusRegistry

GRAMMAR = "START ::= B\nB ::= true\nB ::= false"


class TestCreate:
    def test_create_and_get(self, tmp_path):
        registry = CorpusRegistry(str(tmp_path))
        entry = registry.create("demo", GRAMMAR, sorts=["B"], engine="compiled")
        assert entry["created"] is True
        assert registry.get("demo") == {
            "grammar": GRAMMAR,
            "sorts": ["B"],
            "engine": "compiled",
        }
        assert "demo" in registry
        assert registry.names() == ["demo"]
        assert registry.directory("demo").endswith("/demo")

    def test_identical_recreate_is_idempotent(self, tmp_path):
        registry = CorpusRegistry(str(tmp_path))
        registry.create("demo", GRAMMAR, sorts=["B"])
        entry = registry.create("demo", GRAMMAR, sorts=["B"])
        assert entry["created"] is False
        assert len(registry) == 1

    def test_sorts_order_does_not_break_idempotency(self, tmp_path):
        registry = CorpusRegistry(str(tmp_path))
        registry.create("demo", GRAMMAR, sorts=["B", "A"])
        assert registry.create("demo", GRAMMAR, sorts=["A", "B"])[
            "created"
        ] is False

    def test_conflicting_recreate_is_refused(self, tmp_path):
        registry = CorpusRegistry(str(tmp_path))
        registry.create("demo", GRAMMAR)
        with pytest.raises(ValueError, match="immutable"):
            registry.create("demo", GRAMMAR + "\nB ::= B or B")
        with pytest.raises(ValueError, match="immutable"):
            registry.create("demo", GRAMMAR, engine="earley")

    @pytest.mark.parametrize(
        "bad", ["", ".hidden", "has space", "a/b", "x" * 65, "-lead"]
    )
    def test_invalid_names_are_refused(self, tmp_path, bad):
        registry = CorpusRegistry(str(tmp_path))
        with pytest.raises(ValueError, match="invalid corpus name"):
            registry.create(bad, GRAMMAR)

    def test_survives_reload(self, tmp_path):
        CorpusRegistry(str(tmp_path)).create("demo", GRAMMAR, sorts=["B"])
        reloaded = CorpusRegistry(str(tmp_path))
        assert reloaded.get("demo")["grammar"] == GRAMMAR
        # The reloaded registry still enforces immutability.
        with pytest.raises(ValueError, match="immutable"):
            reloaded.create("demo", "START ::= x")
