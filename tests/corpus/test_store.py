"""The persistent corpus stores: manifest, hash-consed results, journal."""

import json
import os

import pytest

from repro.corpus.store import (
    DocumentStore,
    ParseJournal,
    ResultStore,
    content_hash,
    payload_hash,
)


class TestContentHash:
    def test_deterministic_and_short(self):
        assert content_hash("true or false") == content_hash("true or false")
        assert len(content_hash("x")) == 24
        assert content_hash("a") != content_hash("b")

    def test_payload_hash_ignores_key_order(self):
        assert payload_hash({"a": 1, "b": 2}) == payload_hash({"b": 2, "a": 1})
        assert payload_hash({"a": 1}) != payload_hash({"a": 2})


class TestDocumentStore:
    def test_ingest_and_content_dedup(self, tmp_path):
        store = DocumentStore(str(tmp_path / "c"))
        outcome = store.add_many(
            [("a", "true"), ("b", "false"), ("c-same-text", "true")]
        )
        # Identical text under a different name is one stored document.
        assert outcome == {"added": 2, "duplicates": 1}
        assert len(store) == 2
        digest = content_hash("true")
        assert digest in store
        assert store.get(digest)["name"] == "a"  # first name wins

    def test_reingest_is_idempotent(self, tmp_path):
        store = DocumentStore(str(tmp_path / "c"))
        store.add_many([("a", "true"), ("b", "false")])
        outcome = store.add_many([("a", "true"), ("b", "false")])
        assert outcome == {"added": 0, "duplicates": 2}
        assert len(store) == 2

    def test_survives_reload(self, tmp_path):
        directory = str(tmp_path / "c")
        DocumentStore(directory).add_many([("a", "true"), ("b", "false")])
        reloaded = DocumentStore(directory)
        assert len(reloaded) == 2
        assert reloaded.hashes() == [content_hash("true"), content_hash("false")]
        assert reloaded.get(content_hash("false"))["text"] == "false"

    def test_rejects_unknown_manifest_format(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        (directory / "docs.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="format"):
            DocumentStore(str(directory))


class TestResultStore:
    def test_put_is_write_once_and_hash_consed(self, tmp_path):
        store = ResultStore(str(tmp_path / "c"))
        payload = {"accepted": True, "trees": ["START(B(true))"]}
        digest, created = store.put(payload)
        assert created is True
        again, created_again = store.put(dict(payload))
        assert again == digest and created_again is False
        assert store.puts == 2
        assert store.dedup_hits == 1
        assert store.dedup_ratio() == 0.5
        # One file on disk, named by the payload hash.
        assert sorted(os.listdir(store.directory)) == [f"{digest}.json"]
        assert store.get(digest) == payload

    def test_reload_sees_existing_results(self, tmp_path):
        directory = str(tmp_path / "c")
        digest, _ = ResultStore(directory).put({"accepted": False})
        reloaded = ResultStore(directory)
        assert digest in reloaded
        assert len(reloaded) == 1
        # A re-put of known content after reload still dedups.
        assert reloaded.put({"accepted": False}) == (digest, False)


class TestParseJournal:
    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "parse.log")
        journal = ParseJournal(path)
        journal.append("d1", "r1", True)
        journal.append("d2", "r2", False, extra={"note": "x"})
        journal.close()
        reloaded = ParseJournal(path)
        assert len(reloaded) == 2
        assert "d1" in reloaded and "d2" in reloaded
        assert reloaded.entries["d2"]["note"] == "x"
        assert reloaded.generation == 2
        assert reloaded.duplicates == 0
        assert reloaded.torn_tail is False
        reloaded.close()

    def test_duplicate_appends_are_counted(self, tmp_path):
        journal = ParseJournal(str(tmp_path / "parse.log"))
        journal.append("d1", "r1", True)
        journal.append("d1", "r1", True)
        assert journal.duplicates == 1
        assert journal.generation == 1  # still one completed document
        journal.close()

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "parse.log"
        journal = ParseJournal(str(path))
        journal.append("d1", "r1", True)
        journal.append("d2", "r2", True)
        journal.close()
        # Simulate SIGKILL mid-append: a partial final line.
        with open(path, "a") as handle:
            handle.write('{"doc": "d3", "resu')
        reloaded = ParseJournal(str(path))
        assert reloaded.torn_tail is True
        assert len(reloaded) == 2  # the tear costs exactly the torn entry
        assert "d3" not in reloaded
        reloaded.close()

    def test_torn_suffix_is_repaired_so_later_appends_replay(self, tmp_path):
        """Loading a torn journal truncates the tear; appends made after
        the repair must be visible to the *next* replay (without the
        truncation they would sit behind the torn line forever and the
        same documents would re-parse on every restart)."""
        path = tmp_path / "parse.log"
        journal = ParseJournal(str(path))
        journal.append("d1", "r1", True)
        journal.close()
        with open(path, "a") as handle:
            handle.write("{garbage")
        reloaded = ParseJournal(str(path))
        assert reloaded.torn_tail is True
        reloaded.append("d2", "r2", True)
        reloaded.close()
        final = ParseJournal(str(path))
        assert final.torn_tail is False
        assert "d1" in final and "d2" in final and len(final) == 2
        final.close()
