"""The corpus front door: commands, persistence across restarts, metrics."""

import pytest

from repro import obs
from repro.service.dispatcher import Dispatcher

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

CREATE = {"cmd": "corpus-create", "corpus": "demo", "grammar": GRAMMAR}


@pytest.fixture
def dispatcher(tmp_path):
    served = Dispatcher(corpus_root=str(tmp_path / "corpora"))
    yield served
    served.close()


def ingest(dispatcher, documents):
    return dispatcher.handle(
        {"cmd": "corpus-ingest", "corpus": "demo", "documents": documents}
    )


class TestCommands:
    def test_create_is_idempotent_and_conflicts_are_errors(self, dispatcher):
        assert dispatcher.handle(CREATE)["created"] is True
        assert dispatcher.handle(CREATE)["created"] is False
        conflict = dispatcher.handle(
            {"cmd": "corpus-create", "corpus": "demo", "grammar": "START ::= x"}
        )
        assert "immutable" in conflict["error"]

    def test_create_validates_engine_and_grammar(self, dispatcher):
        assert "unknown engine" in dispatcher.handle(
            {**CREATE, "engine": "warp-drive"}
        )["error"]
        assert "non-empty" in dispatcher.handle(
            {"cmd": "corpus-create", "corpus": "demo", "grammar": "  "}
        )["error"]

    def test_commands_refuse_unknown_corpus(self, dispatcher):
        for cmd in ("corpus-ingest", "corpus-parse", "corpus-status",
                    "corpus-query"):
            response = dispatcher.handle(
                {"cmd": cmd, "corpus": "ghost", "kind": "errors",
                 "documents": ["x"]}
            )
            assert "unknown corpus 'ghost'" in response["error"]

    def test_commands_without_root_are_refused(self):
        bare = Dispatcher()  # no corpus_root
        response = bare.handle({"cmd": "corpus-info"})
        assert "--corpus-root" in response["error"]

    def test_ingest_parse_status_query_info(self, dispatcher):
        dispatcher.handle(CREATE)
        outcome = ingest(
            dispatcher,
            [
                {"name": "good-1", "text": "true or false"},
                {"name": "good-2", "text": "false"},
                {"name": "bad-1", "text": "true or or"},
                {"name": "dup", "text": "true or false"},
            ],
        )
        assert outcome["added"] == 3
        assert outcome["duplicates"] == 1
        assert outcome["documents"] == 3

        parsed = dispatcher.handle(
            {"cmd": "corpus-parse", "corpus": "demo", "wait": True}
        )
        job = parsed["job"]
        assert job["state"] == "done"
        assert job["done"] == 3
        assert job["accepted"] == 2
        assert job["rejected"] == 1

        status = dispatcher.handle({"cmd": "corpus-status", "corpus": "demo"})
        assert status["parsed"] == 3
        assert status["pending"] == 0
        assert status["journal"] == {
            "entries": 3, "duplicates": 0, "torn_tail": False,
        }

        match = dispatcher.handle(
            {"cmd": "corpus-query", "corpus": "demo", "kind": "match",
             "nonterminal": "B"}
        )
        assert match["total"] == 2
        assert {hit["name"] for hit in match["hits"]} == {"good-1", "good-2"}

        errors = dispatcher.handle(
            {"cmd": "corpus-query", "corpus": "demo", "kind": "errors"}
        )
        assert errors["rejected"] == 1
        assert errors["hits"][0]["docs"][0]["name"] == "bad-1"

        info = dispatcher.handle({"cmd": "corpus-info"})
        assert info["corpora"] == ["demo"]
        detail = dispatcher.handle({"cmd": "corpus-info", "corpus": "demo"})
        assert detail["grammar"] == GRAMMAR
        assert detail["documents"] == 3
        assert detail["parsed"] == 3

    def test_ingest_from_files_and_manifest(self, dispatcher, tmp_path):
        dispatcher.handle(CREATE)
        single = tmp_path / "single.txt"
        single.write_text("true")
        tree = tmp_path / "tree" / "nested"
        tree.mkdir(parents=True)
        (tree / "a.txt").write_text("false")
        (tree.parent / "b.txt").write_text("true or true")
        outcome = dispatcher.handle(
            {
                "cmd": "corpus-ingest",
                "corpus": "demo",
                "files": [str(single)],
                "manifest": str(tree.parent),
            }
        )
        assert outcome["added"] == 3
        match_names = dispatcher.handle(
            {"cmd": "corpus-status", "corpus": "demo"}
        )
        assert match_names["documents"] == 3

    def test_ingest_with_nothing_is_an_error(self, dispatcher):
        dispatcher.handle(CREATE)
        response = dispatcher.handle(
            {"cmd": "corpus-ingest", "corpus": "demo"}
        )
        assert "nothing to ingest" in response["error"]

    def test_query_cache_and_bypass(self, dispatcher):
        dispatcher.handle(CREATE)
        ingest(dispatcher, ["true"])
        dispatcher.handle({"cmd": "corpus-parse", "corpus": "demo", "wait": True})
        request = {"cmd": "corpus-query", "corpus": "demo", "kind": "errors"}
        assert dispatcher.handle(dict(request))["cache"] is False
        assert dispatcher.handle(dict(request))["cache"] is True
        assert dispatcher.handle(dict(request, cache=False))["cache"] is False

    def test_parse_validates_window(self, dispatcher):
        dispatcher.handle(CREATE)
        ingest(dispatcher, ["true"])
        response = dispatcher.handle(
            {"cmd": "corpus-parse", "corpus": "demo", "window": 0}
        )
        assert "'window'" in response["error"]


class TestPersistenceAcrossRestarts:
    def test_reopened_root_resumes_without_reparsing(self, tmp_path):
        root = str(tmp_path / "corpora")
        first = Dispatcher(corpus_root=root)
        first.handle(CREATE)
        texts = [
            "true", "false", "true or false", "false or true",
            "true or true", "false or false",
            "true or false or true", "false or true or false",
        ]
        first.handle(
            {"cmd": "corpus-ingest", "corpus": "demo", "documents": texts}
        )
        first.handle({"cmd": "corpus-parse", "corpus": "demo", "wait": True})
        baseline = first.handle(
            {"cmd": "corpus-query", "corpus": "demo", "kind": "match",
             "nonterminal": "B", "cache": False}
        )
        first.close()

        # A fresh process over the same root: definition, documents and
        # results are all there; a re-issued parse has zero work left.
        second = Dispatcher(corpus_root=root)
        try:
            assert second.handle({"cmd": "corpus-info"})["corpora"] == ["demo"]
            parsed = second.handle(
                {"cmd": "corpus-parse", "corpus": "demo", "wait": True}
            )
            assert parsed["job"]["resumed"] == 8
            assert parsed["job"]["parsed_this_run"] == 0
            again = second.handle(
                {"cmd": "corpus-query", "corpus": "demo", "kind": "match",
                 "nonterminal": "B", "cache": False}
            )
            for key in ("total", "occurrences", "hits", "generation"):
                assert again[key] == baseline[key]
        finally:
            second.close()

    def test_new_documents_after_restart_parse_incrementally(self, tmp_path):
        root = str(tmp_path / "corpora")
        first = Dispatcher(corpus_root=root)
        first.handle(CREATE)
        first.handle(
            {"cmd": "corpus-ingest", "corpus": "demo", "documents": ["true"]}
        )
        first.handle({"cmd": "corpus-parse", "corpus": "demo", "wait": True})
        first.close()
        second = Dispatcher(corpus_root=root)
        try:
            second.handle(
                {"cmd": "corpus-ingest", "corpus": "demo",
                 "documents": ["false", "true or false"]}
            )
            parsed = second.handle(
                {"cmd": "corpus-parse", "corpus": "demo", "wait": True}
            )
            assert parsed["job"]["resumed"] == 1
            assert parsed["job"]["parsed_this_run"] == 2
            status = second.handle({"cmd": "corpus-status", "corpus": "demo"})
            assert status["journal"]["duplicates"] == 0
        finally:
            second.close()


class TestMetrics:
    def test_corpus_metrics_reach_the_registry(self, dispatcher):
        dispatcher.handle(CREATE)
        ingest(dispatcher, ["true", "true or or"])
        dispatcher.handle({"cmd": "corpus-parse", "corpus": "demo", "wait": True})
        dispatcher.handle(
            {"cmd": "corpus-query", "corpus": "demo", "kind": "errors"}
        )
        names = {
            sample["name"] for sample in obs.REGISTRY.snapshot().values()
        }
        for wanted in (
            "repro.corpus.docs_ingested",
            "repro.corpus.docs_parsed",
            "repro.corpus.documents",
            "repro.corpus.results",
            "repro.corpus.parsed",
            "repro.corpus.corpora",
            "repro.corpus.queries",
            "repro.corpus.query_cache.misses",
            "repro.corpus.ingest.seconds",
            "repro.corpus.query.seconds",
            "repro.corpus.doc_parse.seconds",
        ):
            assert wanted in names, f"missing metric {wanted}"

    def test_cache_eviction_counters_are_exported(self):
        """PR 8 satellite: both eviction counters appear in the registry.

        ``repro.result_cache.evictions`` comes from the workspace's LRU;
        ``repro.checkpoints.evictions`` from per-session checkpoint
        retention (capacity 16) — both surfaced via the workspace
        collector so capacity pressure is observable."""
        from repro.service.workspace import CHECKPOINT_CAPACITY, Workspace

        workspace = Workspace(cache_capacity=2)
        dispatcher = Dispatcher(workspace=workspace)
        dispatcher.handle(
            {"cmd": "open", "session": "s", "grammar": GRAMMAR}
        )
        # Three distinct parses through a capacity-2 LRU: one eviction.
        for tokens in ("true", "false", "true or false"):
            dispatcher.handle(
                {"cmd": "parse", "session": "s", "tokens": tokens}
            )
        # One checkpoint beyond retention capacity: one checkpoint falls.
        for index in range(CHECKPOINT_CAPACITY + 1):
            dispatcher.handle(
                {
                    "cmd": "parse",
                    "session": "s",
                    "tokens": f"true /*{index}*/",
                    "checkpoint": True,
                    "cache": False,
                }
            )
        samples = obs.REGISTRY.snapshot()
        assert samples["repro.result_cache.evictions"]["value"] >= 1
        assert samples["repro.checkpoints.evictions"]["value"] >= 1
        assert samples["repro.checkpoints.entries"]["value"] >= 1

    def test_checkpoint_eviction_counter_survives_session_close(self):
        """The counter must stay monotone when its session goes away."""
        from repro.service.workspace import CHECKPOINT_CAPACITY, Workspace

        workspace = Workspace()
        dispatcher = Dispatcher(workspace=workspace)
        dispatcher.handle({"cmd": "open", "session": "s", "grammar": GRAMMAR})
        for index in range(CHECKPOINT_CAPACITY + 2):
            dispatcher.handle(
                {
                    "cmd": "parse",
                    "session": "s",
                    "tokens": f"true /*{index}*/",
                    "checkpoint": True,
                }
            )

        def eviction_count():
            return obs.REGISTRY.snapshot()["repro.checkpoints.evictions"][
                "value"
            ]

        before = eviction_count()
        assert before >= 2
        dispatcher.handle({"cmd": "close", "session": "s"})
        assert eviction_count() >= before
