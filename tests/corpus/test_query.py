"""Korp-style query endpoints: match, error summaries, pages, cache."""

import pytest

from repro.corpus.query import MAX_PAGE_SIZE, QueryEngine
from repro.corpus.store import DocumentStore, ParseJournal, ResultStore
from repro.service.protocol import ProtocolError


def build_corpus(tmp_path, parses):
    """Stores populated from ``(name, text, payload)`` triples."""
    directory = str(tmp_path / "corpus")
    docs = DocumentStore(directory)
    results = ResultStore(directory)
    journal = ParseJournal(str(tmp_path / "corpus" / "parse.log"))
    docs.add_many([(name, text) for name, text, _ in parses])
    for _name, text, payload in parses:
        from repro.corpus.store import content_hash

        digest, _ = results.put(payload)
        journal.append(content_hash(text), digest, payload["accepted"])
    return docs, results, journal


ACCEPT_ONE_B = {
    "accepted": True,
    "trees": ["START(B(true))"],
    "tree_count": 1,
    "nonterminals": {"START": 1, "B": 1},
}
ACCEPT_THREE_B = {
    "accepted": True,
    "trees": ["START(B(B(true) or B(false)))"],
    "tree_count": 1,
    "nonterminals": {"START": 1, "B": 3},
}
REJECT_OR = {
    "accepted": False,
    "diagnostics": {
        "message": "unexpected 'or'",
        "expected": ["false", "true"],
        "kind": "syntax",
    },
}
REJECT_EOF = {
    "accepted": False,
    "diagnostics": {"message": "unexpected end of input", "expected": []},
}


class TestMatch:
    def test_occurrences_and_hits(self, tmp_path):
        stores = build_corpus(
            tmp_path,
            [
                ("a", "true", ACCEPT_ONE_B),
                ("b", "true or false", ACCEPT_THREE_B),
                ("c", "or or", REJECT_OR),
            ],
        )
        engine = QueryEngine()
        response = engine.query(
            "demo", *stores, "match", params={"nonterminal": "B"}
        )
        assert response["total"] == 2
        assert response["occurrences"] == 4
        assert [hit["name"] for hit in response["hits"]] == ["a", "b"]
        assert [hit["count"] for hit in response["hits"]] == [1, 3]
        assert response["cache"] is False
        assert response["generation"] == 3

    def test_unknown_nonterminal_is_empty_not_an_error(self, tmp_path):
        stores = build_corpus(tmp_path, [("a", "true", ACCEPT_ONE_B)])
        response = QueryEngine().query(
            "demo", *stores, "match", params={"nonterminal": "NOPE"}
        )
        assert response["total"] == 0 and response["hits"] == []

    def test_pagination(self, tmp_path):
        # Distinct texts so all seven documents survive content dedup.
        stores = build_corpus(
            tmp_path,
            [(f"d{i}", f"true /*{i}*/", dict(ACCEPT_ONE_B)) for i in range(7)],
        )
        engine = QueryEngine()
        first = engine.query(
            "demo",
            *stores,
            "match",
            params={"nonterminal": "B"},
            page=0,
            page_size=3,
        )
        last = engine.query(
            "demo",
            *stores,
            "match",
            params={"nonterminal": "B"},
            page=2,
            page_size=3,
        )
        assert first["total"] == last["total"] == 7
        assert len(first["hits"]) == 3
        assert len(last["hits"]) == 1  # 7 = 3 + 3 + 1
        assert first["hits"][0]["name"] == "d0"
        assert last["hits"][0]["name"] == "d6"


class TestErrors:
    def test_grouped_by_signature_most_frequent_first(self, tmp_path):
        stores = build_corpus(
            tmp_path,
            [
                ("a", "or 1", REJECT_OR),
                ("b", "or 2", REJECT_OR),
                ("c", "true", ACCEPT_ONE_B),
                ("d", "", REJECT_EOF),
            ],
        )
        response = QueryEngine().query("demo", *stores, "errors")
        assert response["accepted"] == 1
        assert response["rejected"] == 3
        assert response["total"] == 2
        top = response["hits"][0]
        assert top["count"] == 2
        assert top["signature"] == "expected:false, true"
        assert "expecting one of" in top["message"]
        assert len(top["docs"]) == 2
        assert top["docs"][0]["name"] == "a"
        assert top["example"]["message"] == "unexpected 'or'"
        assert response["hits"][1]["count"] == 1


class TestCache:
    def test_read_through_hit_and_bypass(self, tmp_path):
        stores = build_corpus(tmp_path, [("a", "true", ACCEPT_ONE_B)])
        engine = QueryEngine()
        miss = engine.query("demo", *stores, "errors")
        hit = engine.query("demo", *stores, "errors")
        bypass = engine.query("demo", *stores, "errors", use_cache=False)
        assert miss["cache"] is False
        assert hit["cache"] is True
        assert bypass["cache"] is False
        for key in ("total", "accepted", "rejected", "hits"):
            assert miss[key] == hit[key] == bypass[key]

    def test_new_generation_invalidates_implicitly(self, tmp_path):
        docs, results, journal = build_corpus(
            tmp_path, [("a", "true", ACCEPT_ONE_B)]
        )
        engine = QueryEngine()
        first = engine.query(
            "demo", docs, results, journal, "match",
            params={"nonterminal": "B"},
        )
        assert first["total"] == 1
        # A newly journaled parse bumps the generation: the next query
        # must rebuild, not serve the stale cached page.
        docs.add_many([("b", "true or false")])
        from repro.corpus.store import content_hash

        digest, _ = results.put(ACCEPT_THREE_B)
        journal.append(content_hash("true or false"), digest, True)
        second = engine.query(
            "demo", docs, results, journal, "match",
            params={"nonterminal": "B"},
        )
        assert second["cache"] is False
        assert second["total"] == 2
        assert second["generation"] == 2


class TestValidation:
    def test_bad_kind_page_and_size(self, tmp_path):
        stores = build_corpus(tmp_path, [("a", "true", ACCEPT_ONE_B)])
        engine = QueryEngine()
        with pytest.raises(ProtocolError, match="unknown query kind"):
            engine.query("demo", *stores, "frequency")
        with pytest.raises(ProtocolError, match="'page'"):
            engine.query("demo", *stores, "errors", page=-1)
        with pytest.raises(ProtocolError, match="'page_size'"):
            engine.query("demo", *stores, "errors", page_size=0)
        with pytest.raises(ProtocolError, match="'page_size'"):
            engine.query("demo", *stores, "errors", page_size=MAX_PAGE_SIZE + 1)
        with pytest.raises(ProtocolError, match="'nonterminal'"):
            engine.query("demo", *stores, "match")
