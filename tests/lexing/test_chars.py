"""Character sets and SDF class parsing."""

import pytest

from repro.lexing.chars import (
    ALPHABET,
    CharClassError,
    CharSet,
    parse_char_class,
    single,
)


class TestCharSet:
    def test_membership(self):
        cs = CharSet("abc")
        assert "a" in cs and "d" not in cs

    def test_union(self):
        assert CharSet("ab").union(CharSet("bc")) == CharSet("abc")

    def test_complement_relative_to_alphabet(self):
        cs = CharSet("a").complement()
        assert "a" not in cs
        assert "b" in cs
        assert "\n" in cs
        assert len(cs) == len(ALPHABET) - 1

    def test_double_complement_is_identity(self):
        cs = CharSet("xyz")
        assert cs.complement().complement() == cs

    def test_value_semantics(self):
        assert CharSet("ab") == CharSet("ba")
        assert hash(CharSet("ab")) == hash(CharSet("ba"))

    def test_rejects_non_characters(self):
        with pytest.raises(CharClassError):
            CharSet(["ab"])

    def test_single(self):
        assert single("x") == CharSet("x")


class TestParseCharClass:
    def test_plain_characters(self):
        assert parse_char_class("[abc]") == CharSet("abc")

    def test_ranges(self):
        cs = parse_char_class("[a-e]")
        assert cs == CharSet("abcde")

    def test_multiple_ranges(self):
        cs = parse_char_class("[a-cx-z0-2]")
        assert cs == CharSet("abcxyz012")

    def test_escaped_dash_is_literal(self):
        cs = parse_char_class(r"[a\-z]")
        assert cs == CharSet("a-z")  # three characters, no range

    def test_escaped_specials(self):
        cs = parse_char_class(r"[\n\t\[\]]")
        assert cs == CharSet("\n\t[]")

    def test_leading_or_trailing_dash(self):
        # a dash with no right neighbour is literal
        assert "-" in parse_char_class(r"[ab\-]")

    def test_empty_class(self):
        assert len(parse_char_class("[]")) == 0

    def test_empty_class_complement_is_everything(self):
        assert parse_char_class("[]").complement() == CharSet(ALPHABET)

    def test_inverted_range_rejected(self):
        with pytest.raises(CharClassError):
            parse_char_class("[z-a]")

    def test_missing_brackets_rejected(self):
        with pytest.raises(CharClassError):
            parse_char_class("abc")

    def test_dangling_escape_rejected(self):
        # "[a\]" — the backslash escapes the closing bracket, leaving the
        # class body as "a\" with nothing after the escape
        with pytest.raises(CharClassError):
            parse_char_class("[a\\]")

    def test_appendix_b_id_tail(self):
        cs = parse_char_class(r"[a-zA-Z0-9\-_]")
        for ch in "azAZ09-_":
            assert ch in cs
        assert "+" not in cs
