"""SDF lexical syntax → ISG scanner: the full front-end dogfood."""

import pytest

from repro.lexing.sdf_bridge import (
    LexicalCycleError,
    cf_literals,
    referenced_lexical_sorts,
    scanner_from_sdf,
)
from repro.sdf.corpus import CORPUS, sdf_definition
from repro.sdf.lexer import tokenize
from repro.sdf.parser import parse_sdf


def isg_terminal(lexeme):
    return lexeme.sort[4:] if lexeme.sort.startswith("lit:") else lexeme.sort


class TestBridgeStructure:
    def test_referenced_lexical_sorts(self):
        sorts = referenced_lexical_sorts(sdf_definition())
        assert set(sorts) == {"ID", "LITERAL", "CHAR-CLASS", "ITERATOR"}

    def test_cf_literals_include_keywords_and_separators(self):
        literals = cf_literals(sdf_definition())
        assert "module" in literals
        assert "->" in literals
        assert "," in literals  # from the {SORT ","}+ separators


class TestEquivalenceWithBootstrapLexer:
    @pytest.mark.parametrize("name", list(CORPUS))
    def test_corpus_streams_identical(self, name):
        scanner = scanner_from_sdf(sdf_definition())
        lexemes = scanner.scan(CORPUS[name])
        hand = tokenize(CORPUS[name])
        assert [isg_terminal(lex) for lex in lexemes] == [
            t.terminal().name for t in hand
        ]

    def test_keywords_reserved_against_id(self):
        scanner = scanner_from_sdf(sdf_definition())
        (lexeme,) = scanner.scan("module")
        assert lexeme.sort == "lit:module"
        (lexeme,) = scanner.scan("modules")  # longer: the ID wins
        assert lexeme.sort == "ID"


class TestLaziness:
    def test_small_input_materializes_fraction(self):
        scanner = scanner_from_sdf(sdf_definition())
        scanner.scan("module x begin end x")
        assert 0 < scanner.dfa.fraction_of_full() < 1


class TestCycleDetection:
    def test_recursive_lexical_sort_rejected(self):
        text = """
module loop
begin
  lexical syntax
    sorts A
    functions
      A "x" -> A
  context-free syntax
    sorts S
    functions
      A -> S
end loop
"""
        with pytest.raises(LexicalCycleError):
            scanner_from_sdf(parse_sdf(text))

    def test_undefined_lexical_sort_rejected(self):
        text = """
module hole
begin
  context-free syntax
    sorts S
    functions
      GHOST -> S
end hole
"""
        with pytest.raises(LexicalCycleError):
            scanner_from_sdf(parse_sdf(text))
