"""Regex AST properties and the Thompson NFA."""

import pytest

from repro.lexing.chars import parse_char_class
from repro.lexing.nfa import NFA
from repro.lexing.regex import (
    Alt,
    Concat,
    Epsilon,
    Star,
    Sym,
    first_chars,
    literal,
    nullable,
    optional,
    plus,
)


def matches(nfa: NFA, text: str):
    """Tags accepting exactly ``text``."""
    states = nfa.epsilon_closure(frozenset({nfa.start}))
    for ch in text:
        states = nfa.step(states, ch)
        if not states:
            return ()
    return nfa.accepting_tags(states)


class TestRegexProperties:
    def test_nullable(self):
        assert nullable(Epsilon())
        assert nullable(Star(literal("a")))
        assert nullable(optional(literal("a")))
        assert not nullable(literal("a"))
        assert not nullable(plus(literal("a")))
        assert nullable(Concat([Epsilon(), Star(literal("x"))]))
        assert not nullable(Concat([Epsilon(), literal("x")]))
        assert nullable(Alt([literal("x"), Epsilon()]))

    def test_first_chars(self):
        assert first_chars(literal("abc")) == ("a",)
        assert first_chars(Alt([literal("a"), literal("b")])) == ("a", "b")
        assert first_chars(Concat([Star(literal("a")), literal("b")])) == (
            "a",
            "b",
        )

    def test_immutability(self):
        regex = literal("ab")
        with pytest.raises(AttributeError):
            regex.parts = ()  # type: ignore[attr-defined]


class TestThompson:
    def test_literal(self):
        nfa = NFA()
        nfa.add_definition("AB", literal("ab"))
        assert matches(nfa, "ab") == ("AB",)
        assert matches(nfa, "a") == ()
        assert matches(nfa, "abc") == ()

    def test_alternation(self):
        nfa = NFA()
        nfa.add_definition("K", Alt([literal("if"), literal("then")]))
        assert matches(nfa, "if") == ("K",)
        assert matches(nfa, "then") == ("K",)
        assert matches(nfa, "else") == ()

    def test_star(self):
        nfa = NFA()
        nfa.add_definition("AS", Star(literal("a")))
        assert matches(nfa, "") == ("AS",)
        assert matches(nfa, "aaaa") == ("AS",)
        assert matches(nfa, "ab") == ()

    def test_plus(self):
        nfa = NFA()
        nfa.add_definition("AP", plus(literal("a")))
        assert matches(nfa, "") == ()
        assert matches(nfa, "aaa") == ("AP",)

    def test_char_classes(self):
        nfa = NFA()
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        assert matches(nfa, "hello") == ("ID",)
        assert matches(nfa, "Hello") == ()

    def test_empty_alt_matches_nothing(self):
        nfa = NFA()
        nfa.add_definition("NONE", Alt([]))
        assert matches(nfa, "") == ()
        assert matches(nfa, "x") == ()

    def test_multiple_definitions_share_the_start(self):
        nfa = NFA()
        nfa.add_definition("IF", literal("if"))
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        assert matches(nfa, "if") == ("IF", "ID")  # both accept; order = priority
        assert matches(nfa, "iffy") == ("ID",)


class TestRemoveDefinition:
    def test_removal_forgets_the_language(self):
        nfa = NFA()
        nfa.add_definition("IF", literal("if"))
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        nfa.remove_definition("IF")
        assert matches(nfa, "if") == ("ID",)

    def test_removal_drops_owned_states(self):
        nfa = NFA()
        nfa.add_definition("A", literal("aaa"))
        size = nfa.size
        nfa.add_definition("B", literal("bbb"))
        nfa.remove_definition("B")
        assert nfa.size == size

    def test_removal_of_absent_tag_is_noop(self):
        nfa = NFA()
        nfa.add_definition("A", literal("a"))
        nfa.remove_definition("NOPE")
        assert matches(nfa, "a") == ("A",)
