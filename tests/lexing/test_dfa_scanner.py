"""Lazy DFA and the ISG scanner: laziness, longest match, invalidation."""

import pytest

from repro.lexing.chars import parse_char_class
from repro.lexing.dfa import LazyDFA
from repro.lexing.nfa import NFA
from repro.lexing.regex import Sym, literal, plus
from repro.lexing.scanner import Lexeme, ScanError, Scanner


def basic_scanner():
    scanner = Scanner()
    scanner.add_token("IF", literal("if"))
    scanner.add_token("ID", plus(Sym(parse_char_class("[a-z]"))))
    scanner.add_token("NUM", plus(Sym(parse_char_class("[0-9]"))))
    scanner.add_token("WS", plus(Sym(parse_char_class("[\\ ]"))), layout=True)
    return scanner


class TestLazyDFA:
    def test_states_materialize_on_demand(self):
        nfa = NFA()
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        nfa.add_definition("NUM", plus(Sym(parse_char_class("[0-9]"))))
        dfa = LazyDFA(nfa)
        _ = dfa.start
        assert dfa.materialized_states == 1
        dfa.step(dfa.start, "a")
        assert dfa.materialized_states == 2  # the NUM side never appears

    def test_transitions_memoized(self):
        nfa = NFA()
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        dfa = LazyDFA(nfa)
        dfa.step(dfa.start, "a")
        computed = dfa.transitions_computed
        dfa.step(dfa.start, "a")
        assert dfa.transitions_computed == computed

    def test_dead_ends_memoized_as_none(self):
        nfa = NFA()
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        dfa = LazyDFA(nfa)
        assert dfa.step(dfa.start, "9") is None
        assert dfa.start.transitions["9"] is None

    def test_full_state_count_is_an_upper_bound(self):
        nfa = NFA()
        nfa.add_definition("ID", plus(Sym(parse_char_class("[a-z]"))))
        nfa.add_definition("NUM", plus(Sym(parse_char_class("[0-9]"))))
        dfa = LazyDFA(nfa)
        dfa.step(dfa.start, "a")
        assert dfa.materialized_states <= dfa.full_state_count()
        assert 0 < dfa.fraction_of_full() < 1


class TestScanning:
    def test_longest_match(self):
        scanner = basic_scanner()
        assert scanner.scan("iffy") == [Lexeme("ID", "iffy", 0)]

    def test_priority_breaks_length_ties(self):
        scanner = basic_scanner()
        assert scanner.scan("if") == [Lexeme("IF", "if", 0)]

    def test_layout_skipped(self):
        scanner = basic_scanner()
        lexemes = scanner.scan("if   abc 42")
        assert [(lex.sort, lex.text) for lex in lexemes] == [
            ("IF", "if"),
            ("ID", "abc"),
            ("NUM", "42"),
        ]

    def test_positions_recorded(self):
        scanner = basic_scanner()
        lexemes = scanner.scan("ab 12")
        assert [lex.position for lex in lexemes] == [0, 3]

    def test_scan_error_on_unknown_character(self):
        scanner = basic_scanner()
        with pytest.raises(ScanError) as excinfo:
            scanner.scan("ab !")
        assert excinfo.value.position == 3

    def test_empty_input(self):
        assert basic_scanner().scan("") == []

    def test_backtracking_to_last_accept(self):
        # 'abc1x': ID matches 'abc', NUM '1', then ID 'x' — the scanner
        # must rewind to the last accepting point, not die mid-token
        scanner = basic_scanner()
        lexemes = scanner.scan("abc1x")
        assert [(lex.sort, lex.text) for lex in lexemes] == [
            ("ID", "abc"),
            ("NUM", "1"),
            ("ID", "x"),
        ]


class TestIncrementalModification:
    def test_remove_changes_classification(self):
        scanner = basic_scanner()
        assert scanner.scan("if")[0].sort == "IF"
        scanner.remove_token("IF")
        assert scanner.scan("if")[0].sort == "ID"

    def test_add_after_scanning_invalidates_lazily(self):
        scanner = basic_scanner()
        scanner.scan("abc if 42")
        # '->' shares no prefix with existing sorts, so the new branch
        # only affects the (re-derived) start state
        scanner.add_token("ARROW", literal("->"))
        lexemes = scanner.scan("abc ->")
        assert [(lex.sort, lex.text) for lex in lexemes] == [
            ("ID", "abc"),
            ("ARROW", "->"),
        ]

    def test_late_keyword_loses_length_ties_to_earlier_id(self):
        # priority is first-addition order: a keyword added *after* the
        # identifier sort cannot reserve itself against it
        scanner = basic_scanner()
        scanner.add_token("WHILE", literal("while"))
        assert scanner.scan("while")[0].sort == "ID"

    def test_before_parameter_reserves_late_keyword(self):
        # ...unless it is spliced ahead of ID with before=
        scanner = basic_scanner()
        scanner.add_token("WHILE", literal("while"), before="ID")
        assert scanner.scan("while")[0].sort == "WHILE"
        assert scanner.scan("whiles")[0].sort == "ID"  # longest match wins

    def test_readding_extends_definition(self):
        scanner = Scanner()
        scanner.add_token("K", literal("aa"))
        scanner.add_token("K", literal("bb"))
        assert scanner.scan("aa")[0].sort == "K"
        assert scanner.scan("bb")[0].sort == "K"

    def test_invalidation_returns_drop_count(self):
        scanner = basic_scanner()
        scanner.scan("abc if 42")
        dropped = scanner.dfa.invalidate_definition("ID")
        assert dropped > 0

    def test_stats_shape(self):
        scanner = basic_scanner()
        scanner.scan("abc")
        stats = scanner.stats()
        assert set(stats) == {
            "dfa_states",
            "transitions_computed",
            "nfa_states",
            "definitions",
        }
