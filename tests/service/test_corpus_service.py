"""E2E: the corpus service over TCP — bulk ingest, sharded batch parse,
hard-kill resumability, and Korp-style queries from the persistent store.

The acceptance path of PR 8, end to end against real ``repro serve``
subprocesses in process-shard mode: ingest >= 1k generated boolean
documents, batch-parse them across 2 shards while ``corpus-status``
reports progress, SIGKILL the server mid-parse, restart it over the same
``--corpus-root``, and assert the job *resumes* — completed documents are
never re-parsed (parse-count metrics), no document is journaled twice,
and the restarted server answers the same queries with the same results.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

#: Unambiguous on purpose: every accepted document has exactly one tree,
#: so a thousand documents parse in seconds instead of exploding into
#: Catalan-many trees under ``B ::= B or B``.
GRAMMAR = (
    "START ::= B\n"
    "B ::= true\n"
    "B ::= false\n"
    "B ::= B or true\n"
    "B ::= B or false"
)

#: 1024 distinct accepted documents (the 10-bit binary expansions) plus
#: 26 rejected ones sharing a diagnostic signature.
ACCEPTED_DOCS = 1024
REJECTED_DOCS = 26
TOTAL_DOCS = ACCEPTED_DOCS + REJECTED_DOCS


def corpus_documents():
    documents = []
    for value in range(ACCEPTED_DOCS):
        tokens = [
            "true" if (value >> bit) & 1 else "false" for bit in range(10)
        ]
        documents.append(
            {"name": f"bool-{value:04d}", "text": " or ".join(tokens)}
        )
    for index in range(REJECTED_DOCS):
        # Identical up to the failure point, distinct after it: distinct
        # documents whose distilled diagnostics are byte-identical — the
        # hash-consed result store collapses all 26 into one payload.
        documents.append(
            {"name": f"bad-{index:02d}", "text": f"true or maybe tail-{index}"}
        )
    return documents


class ServerProcess:
    """One ``repro serve`` subprocess bound to a corpus root."""

    def __init__(self, tmp_path, corpus_root, tag):
        ready = tmp_path / f"ready-{tag}"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--mode",
                "process",
                "--corpus-root",
                str(corpus_root),
                "--ready-file",
                str(ready),
            ],
            env=env,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        deadline = time.time() + 60
        while time.time() < deadline and not ready.exists():
            time.sleep(0.05)
        assert ready.exists(), "server never wrote the ready file"
        host, port = ready.read_text().strip().rsplit(":", 1)
        self.address = (host, int(port))

    def connect(self):
        sock = socket.create_connection(self.address, timeout=60)
        return sock, sock.makefile("rw", encoding="utf-8", newline="\n")

    def kill_hard(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self):
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.communicate(timeout=30)


def exchange(stream, *requests):
    for request in requests:
        stream.write(json.dumps(request) + "\n")
    stream.flush()
    return [json.loads(stream.readline()) for _ in requests]


def poll_status(stream, corpus="bools"):
    (status,) = exchange(stream, {"cmd": "corpus-status", "corpus": corpus})
    assert "error" not in status, status
    return status


def drive_to_completion(stream, timeout=180):
    """Poll ``corpus-status`` until the job finishes; returns the trail."""
    trail = []
    deadline = time.time() + timeout
    while time.time() < deadline:
        status = poll_status(stream)
        trail.append(status)
        job = status.get("job") or {}
        if job.get("state") in ("done", "failed", "stopped"):
            return trail
        time.sleep(0.1)
    raise AssertionError(f"corpus parse never finished: {trail[-1]}")


def strip_bookkeeping(response):
    return {
        key: value
        for key, value in response.items()
        if key not in ("time", "cache")
    }


class TestCorpusServiceEndToEnd:
    def test_ingest_parse_kill_resume_query(self, tmp_path):
        corpus_root = tmp_path / "corpora"
        documents = corpus_documents()
        server = ServerProcess(tmp_path, corpus_root, "first")
        try:
            sock, stream = server.connect()
            (created,) = exchange(
                stream,
                {"cmd": "corpus-create", "corpus": "bools", "grammar": GRAMMAR},
            )
            assert created.get("created") is True, created

            # Bulk ingest in chunks; re-ingesting a chunk is a no-op.
            added = duplicates = 0
            for start in range(0, len(documents), 210):
                (outcome,) = exchange(
                    stream,
                    {
                        "cmd": "corpus-ingest",
                        "corpus": "bools",
                        "documents": documents[start : start + 210],
                    },
                )
                assert "error" not in outcome, outcome
                added += outcome["added"]
                duplicates += outcome["duplicates"]
            assert added == TOTAL_DOCS
            assert duplicates == 0
            (again,) = exchange(
                stream,
                {
                    "cmd": "corpus-ingest",
                    "corpus": "bools",
                    "documents": documents[:210],
                },
            )
            assert again["added"] == 0 and again["duplicates"] == 210

            # Start the batch parse across both process shards and let it
            # make real progress before pulling the plug.
            (started,) = exchange(
                stream, {"cmd": "corpus-parse", "corpus": "bools"}
            )
            assert "error" not in started, started
            assert len(started["job"]["sessions"]) == 2
            deadline = time.time() + 120
            progressed = None
            while time.time() < deadline:
                status = poll_status(stream)
                if status["parsed"] >= min(100, TOTAL_DOCS // 4):
                    progressed = status
                    break
                time.sleep(0.05)
            assert progressed is not None, "no parse progress before kill"
            assert 0 < progressed["parsed"] < TOTAL_DOCS
            sock.close()
        finally:
            server.kill_hard()

        # The same corpus root, a brand-new server: the journal prefix
        # survived SIGKILL, so the re-issued parse only drains the rest.
        server = ServerProcess(tmp_path, corpus_root, "second")
        try:
            sock, stream = server.connect()
            (info,) = exchange(stream, {"cmd": "corpus-info"})
            assert info["corpora"] == ["bools"]

            (resumed,) = exchange(
                stream, {"cmd": "corpus-parse", "corpus": "bools"}
            )
            assert "error" not in resumed, resumed
            trail = drive_to_completion(stream)
            final = trail[-1]
            job = final["job"]
            assert job["state"] == "done", final

            # Resume, measured: the first run's completed documents were
            # adopted, not re-parsed, and this run only did the rest.
            assert job["resumed"] > 0
            assert job["parsed_this_run"] < TOTAL_DOCS
            assert job["resumed"] + job["parsed_this_run"] >= TOTAL_DOCS
            assert job["done"] == TOTAL_DOCS

            # Zero duplicate parses, zero lost documents.
            assert final["journal"]["duplicates"] == 0
            assert final["documents"] == TOTAL_DOCS
            assert final["parsed"] == TOTAL_DOCS
            assert final["pending"] == 0

            # Progress was visible while draining (done is monotone).
            done_trail = [s["parsed"] for s in trail]
            assert done_trail == sorted(done_trail)

            # Hash-consing: 1024 accepted docs share far fewer payloads
            # (identical parse shapes), so the store deduplicates.
            assert final["store"]["results"] < TOTAL_DOCS
            assert final["store"]["dedup_hits"] > 0

            # -- Korp-style queries over the persistent store ----------
            match_page, match_cached = exchange(
                stream,
                {
                    "cmd": "corpus-query",
                    "corpus": "bools",
                    "kind": "match",
                    "nonterminal": "B",
                    "page": 0,
                    "page_size": 200,
                },
                {
                    "cmd": "corpus-query",
                    "corpus": "bools",
                    "kind": "match",
                    "nonterminal": "B",
                    "page": 0,
                    "page_size": 200,
                },
            )
            assert match_page["total"] == ACCEPTED_DOCS
            assert len(match_page["hits"]) == 200
            assert match_page["cache"] is False
            assert match_cached["cache"] is True
            assert strip_bookkeeping(match_page) == strip_bookkeeping(
                match_cached
            )
            # Last page holds the remainder.
            (last_page,) = exchange(
                stream,
                {
                    "cmd": "corpus-query",
                    "corpus": "bools",
                    "kind": "match",
                    "nonterminal": "B",
                    "page": ACCEPTED_DOCS // 200,
                    "page_size": 200,
                },
            )
            assert len(last_page["hits"]) == ACCEPTED_DOCS % 200

            (errors,) = exchange(
                stream,
                {"cmd": "corpus-query", "corpus": "bools", "kind": "errors"},
            )
            assert errors["accepted"] == ACCEPTED_DOCS
            assert errors["rejected"] == REJECTED_DOCS
            # All 26 bad docs fail the same way: one signature group.
            assert errors["total"] == 1
            assert errors["hits"][0]["count"] == REJECTED_DOCS
            sock.close()
        finally:
            server.terminate()

        # A third process over the same root answers the same queries
        # from the persistent store alone — no parse job ever ran here.
        server = ServerProcess(tmp_path, corpus_root, "third")
        try:
            sock, stream = server.connect()
            (replayed,) = exchange(
                stream,
                {
                    "cmd": "corpus-query",
                    "corpus": "bools",
                    "kind": "match",
                    "nonterminal": "B",
                    "page": 0,
                    "page_size": 200,
                    "cache": False,
                },
            )
            assert strip_bookkeeping(replayed) == strip_bookkeeping(match_page)
            status = poll_status(stream)
            assert status["parsed"] == TOTAL_DOCS
            assert "job" not in status  # nothing ever parsed here
            sock.close()
        finally:
            server.terminate()
