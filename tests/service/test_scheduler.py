"""The sharded scheduler: routing, coalescing, backpressure, drain."""

import threading

import pytest

from repro.service import Dispatcher, Scheduler, merge_global, plan_batch

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"


def open_request(name):
    return {"cmd": "open", "session": name, "grammar": GRAMMAR}


def parse_request(name, tokens="true or false"):
    return {"cmd": "parse", "session": name, "tokens": tokens}


class RecordingStub:
    """A dispatcher stand-in whose handle() can be paused by a test."""

    def __init__(self):
        self.calls = []
        self.release = threading.Event()
        self.started = threading.Event()
        self.block_next = False

    def handle(self, request):
        self.calls.append(request)
        if self.block_next:
            self.block_next = False
            self.started.set()
            assert self.release.wait(timeout=30)
        return {"ok": True, "cmd": request.get("cmd"), "time": 0.0}


class TestPlanBatch:
    def test_identical_parses_coalesce(self):
        requests = [parse_request("a"), parse_request("a"), parse_request("a")]
        execute, placements = plan_batch(requests)
        assert len(execute) == 1
        assert placements == [("run", 0), ("copy", 0), ("copy", 0)]

    def test_different_tokens_do_not_coalesce(self):
        execute, placements = plan_batch(
            [parse_request("a", "true"), parse_request("a", "false")]
        )
        assert len(execute) == 2
        assert [kind for kind, _ in placements] == ["run", "run"]

    def test_engine_participates_in_the_key(self):
        base = parse_request("a")
        with_engine = dict(parse_request("a"), engine="gss")
        execute, placements = plan_batch([base, with_engine, dict(base)])
        assert len(execute) == 2
        assert placements == [("run", 0), ("run", 1), ("copy", 0)]

    def test_checkpoint_participates_in_the_key(self):
        """A checkpointed parse must never be answered with a plain
        parse's copy: the copy would lack the ``result`` id and the
        session would retain no checkpoint for a later edit-parse."""
        plain = parse_request("a")
        checkpointed = dict(parse_request("a"), checkpoint=True)
        execute, placements = plan_batch(
            [plain, checkpointed, dict(checkpointed), dict(plain)]
        )
        assert len(execute) == 2
        assert placements == [
            ("run", 0),
            ("run", 1),
            ("copy", 1),
            ("copy", 0),
        ]

    def test_text_and_token_list_never_share_an_answer(self):
        as_text = parse_request("a", "true or false")
        as_list = {
            "cmd": "parse",
            "session": "a",
            "tokens": ["true", "or", "false"],
        }
        execute, _ = plan_batch([as_text, as_list])
        assert len(execute) == 2

    def test_edit_breaks_the_run_for_its_session_only(self):
        requests = [
            parse_request("a"),
            parse_request("b"),
            {"cmd": "add-rule", "session": "a", "rule": "B ::= maybe"},
            parse_request("a"),  # must re-run: the grammar moved
            parse_request("b"),  # may still coalesce: b was untouched
        ]
        execute, placements = plan_batch(requests)
        assert placements == [
            ("run", 0),
            ("run", 1),
            ("run", 2),
            ("run", 3),
            ("copy", 1),
        ]
        assert len(execute) == 4

    def test_unroutable_mutation_breaks_every_run(self):
        requests = [
            parse_request("a"),
            {"cmd": "restore", "path": "/tmp/x"},  # no session named
            parse_request("a"),
        ]
        execute, placements = plan_batch(requests)
        assert [kind for kind, _ in placements] == ["run", "run", "run"]
        assert len(execute) == 3

    def test_recognize_and_parse_do_not_mix(self):
        execute, _ = plan_batch(
            [
                parse_request("a"),
                {"cmd": "recognize", "session": "a", "tokens": "true or false"},
            ]
        )
        assert len(execute) == 2


class TestRouting:
    def test_shard_assignment_is_stable_and_in_range(self):
        with Scheduler(workers=3) as scheduler:
            for name in ("alpha", "beta", "gamma", "s000", "s001"):
                shard = scheduler.shard_of(name)
                assert 0 <= shard < 3
                assert scheduler.shard_of(name) == shard

    def test_session_requests_land_on_one_shard(self):
        with Scheduler(workers=4) as scheduler:
            scheduler.handle(open_request("pinned"))
            for _ in range(5):
                assert scheduler.handle(parse_request("pinned"))["accepted"]
            owner = scheduler.shards[scheduler.shard_of("pinned")]
            assert owner.completed == 6
            others = [
                shard.completed
                for shard in scheduler.shards
                if shard is not owner
            ]
            assert sum(others) == 0

    def test_restore_routes_by_snapshot_payload_name(self):
        with Scheduler(workers=4) as scheduler:
            scheduler.handle(open_request("donor"))
            snapshot = scheduler.handle(
                {"cmd": "snapshot", "session": "donor"}
            )["snapshot"]
            response = scheduler.handle({"cmd": "restore", "snapshot": snapshot, "force": True})
            assert response["restored"] == "donor"
            owner = scheduler.shards[scheduler.shard_of("donor")]
            assert owner.completed == 3

    def test_unroutable_restore_is_refused(self):
        with Scheduler(workers=2) as scheduler:
            response = scheduler.handle({"cmd": "restore", "path": "/tmp/nope"})
            assert "needs a 'session'" in response["error"]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            Scheduler(workers=0)

    def test_unknown_mode_is_refused(self):
        with pytest.raises(ValueError):
            Scheduler(mode="fibers")

    def test_bad_bounds_are_refused_before_any_spawn(self, monkeypatch):
        from repro.service import scheduler as scheduler_module

        def forbidden(*_args, **_kwargs):
            raise AssertionError("spawned a child before validating bounds")

        monkeypatch.setattr(scheduler_module, "ProcessExecutor", forbidden)
        for kwargs in ({"max_depth": 0}, {"max_batch": 0}):
            with pytest.raises(ValueError):
                Scheduler(workers=2, mode="process", **kwargs)


class TestBackpressure:
    def test_full_queue_answers_overloaded(self):
        stub = RecordingStub()
        stub.block_next = True
        scheduler = Scheduler(
            workers=1, dispatcher=stub, max_depth=2, max_batch=1
        )
        try:
            blocked = scheduler.submit(parse_request("a"))
            assert stub.started.wait(timeout=30)  # worker is busy with it
            queued = [scheduler.submit(parse_request("a")) for _ in range(2)]
            rejected = scheduler.submit(parse_request("a"))
            response = rejected.result(timeout=30)
            assert response["overloaded"] is True
            assert "overloaded" in response["error"]
            assert response["session"] == "a"
            stub.release.set()
            assert blocked.result(timeout=30)["ok"]
            for future in queued:
                assert "error" not in future.result(timeout=30)
            assert scheduler.metrics()["overloaded"] == 1
        finally:
            stub.release.set()
            scheduler.close()

    def test_submit_after_close_reports_shutdown(self):
        scheduler = Scheduler(workers=1)
        scheduler.close()
        response = scheduler.submit(parse_request("a")).result(timeout=30)
        assert "shutting down" in response["error"]


class TestCoalescingIntegration:
    def test_queued_duplicates_execute_once(self):
        stub = RecordingStub()
        stub.block_next = True
        scheduler = Scheduler(
            workers=1, dispatcher=stub, max_depth=64, max_batch=16
        )
        try:
            first = scheduler.submit({"cmd": "info"})
            assert stub.started.wait(timeout=30)
            # These four queue up behind the blocker and drain as one batch.
            futures = [scheduler.submit(parse_request("a")) for _ in range(3)]
            futures.append(scheduler.submit(parse_request("b")))
            stub.release.set()
            responses = [future.result(timeout=30) for future in futures]
            assert first.result(timeout=30)["ok"]
            copies = [r for r in responses if r.get("coalesced")]
            assert len(copies) == 2  # a's duplicates; b ran on its own
            parse_calls = [
                call for call in stub.calls if call.get("cmd") == "parse"
            ]
            assert len(parse_calls) == 2  # one per distinct (session, tokens)
            metrics = scheduler.metrics()
            assert metrics["coalesced"] == 2
            shard = metrics["shards"][0]
            assert shard["largest_batch"] >= 4
            assert shard["latency"]["parse"]["count"] == 4
            assert "p50" in shard["latency"]["parse"]
        finally:
            stub.release.set()
            scheduler.close()


class TestDrainAndMetrics:
    def test_close_serves_everything_already_queued(self):
        stub = RecordingStub()
        stub.block_next = True
        scheduler = Scheduler(
            workers=1, dispatcher=stub, max_depth=64, max_batch=4
        )
        blocked = scheduler.submit({"cmd": "info"})
        assert stub.started.wait(timeout=30)
        queued = [scheduler.submit(parse_request("a", f"t{i}")) for i in range(5)]
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        stub.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert blocked.result(timeout=1)["ok"]
        for future in queued:
            assert "error" not in future.result(timeout=1)

    def test_global_metrics_carries_scheduler_section(self):
        with Scheduler(workers=2) as scheduler:
            scheduler.handle(open_request("m"))
            scheduler.handle(parse_request("m"))
            response = scheduler.handle({"cmd": "metrics"})
            section = response["scheduler"]
            assert section["mode"] == "thread"
            assert section["workers"] == 2
            assert len(section["shards"]) == 2
            # open + parse + the metrics request itself
            assert sum(s["completed"] for s in section["shards"]) == 3

    def test_dispatcher_compatible_with_serve_loop(self):
        import io
        import json

        from repro.service import serve

        output = io.StringIO()
        with Scheduler(workers=2) as scheduler:
            serve(
                io.StringIO(
                    json.dumps(open_request("x"))
                    + "\n"
                    + json.dumps(parse_request("x"))
                    + "\n"
                ),
                output,
                scheduler,
            )
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert responses[0]["opened"] == "x"
        assert responses[1]["accepted"] is True


class TestMergeGlobal:
    def test_sessions_union(self):
        merged = merge_global(
            {"cmd": "sessions"},
            [
                {"cmd": "sessions", "sessions": ["a", "c"], "time": 0.1},
                {"cmd": "sessions", "sessions": ["b"], "time": 0.2},
            ],
        )
        assert merged["sessions"] == ["a", "b", "c"]
        assert merged["time"] == 0.2

    def test_metrics_sums(self):
        part = {
            "cmd": "metrics",
            "sessions": 1,
            "cache": {"hits": 2, "misses": 2, "evictions": 0, "invalidations": 1},
            "cache_entries": 2,
            "action_cache": {"action_cache_hits": 5},
            "requests": {"parse": {"count": 2, "seconds": 0.4, "mean": 0.2}},
            "time": 0.01,
        }
        merged = merge_global({"cmd": "metrics"}, [part, part])
        assert merged["sessions"] == 2
        assert merged["cache"]["hits"] == 4
        assert merged["cache"]["hit_rate"] == 0.5
        assert merged["action_cache"]["action_cache_hits"] == 10
        assert merged["requests"]["parse"] == {
            "count": 4,
            "seconds": 0.8,
            "mean": 0.2,
        }

    def test_error_part_wins(self):
        merged = merge_global(
            {"cmd": "sessions"},
            [{"cmd": "sessions", "sessions": ["a"], "time": 0.0},
             {"error": "shard 1 failed", "time": 0.0}],
        )
        assert merged["error"] == "shard 1 failed"


class TestProcessMode:
    """Each shard is a ``repro serve`` child; slower, so kept minimal."""

    def test_end_to_end_with_broadcast_merge(self):
        with Scheduler(workers=2, mode="process") as scheduler:
            # "s1" and "zz" hash to different shards (asserted, not hoped).
            assert scheduler.shard_of("s1") != scheduler.shard_of("zz")
            assert scheduler.handle(open_request("s1"))["opened"] == "s1"
            assert scheduler.handle(open_request("zz"))["opened"] == "zz"
            assert scheduler.handle(parse_request("s1"))["accepted"]
            assert scheduler.handle(parse_request("zz"))["accepted"]
            listed = scheduler.handle({"cmd": "sessions"})
            assert listed["sessions"] == ["s1", "zz"]
            metrics = scheduler.handle({"cmd": "metrics"})
            assert metrics["sessions"] == 2
            assert metrics["scheduler"]["mode"] == "process"

    def test_dead_child_answers_retryably_and_is_respawned(self):
        import time as time_module

        scheduler = Scheduler(workers=2, mode="process", backoff_ms=10)
        try:
            assert scheduler.handle(open_request("s1"))["opened"] == "s1"
            assert scheduler.handle(open_request("zz"))["opened"] == "zz"
            victim = scheduler.shards[scheduler.shard_of("s1")]
            victim.executor.terminate()
            failed = scheduler.handle(parse_request("s1"))
            assert failed["error"] == "shard-restarting"
            assert failed["retry_after_ms"] >= 0
            # The other shard keeps serving throughout the restart.
            assert scheduler.handle(parse_request("zz"))["accepted"]
            # The supervisor respawns the victim and replays its journal.
            deadline = time_module.monotonic() + 20
            while victim.state != "ok" and time_module.monotonic() < deadline:
                time_module.sleep(0.02)
            assert victim.state == "ok"
            assert scheduler.handle(parse_request("s1"))["accepted"]
        finally:
            scheduler.close()

    def test_injected_dispatcher_is_refused(self):
        with pytest.raises(ValueError):
            Scheduler(workers=2, mode="process", dispatcher=Dispatcher())

    def test_failed_spawn_terminates_already_started_children(self, monkeypatch):
        from repro.service import scheduler as scheduler_module

        spawned = []
        real = scheduler_module.ProcessExecutor

        class FlakyExecutor:
            def __new__(cls, cache_capacity=1024, **kwargs):
                if len(spawned) == 1:
                    raise OSError("spawn failed")
                executor = real(cache_capacity=cache_capacity, **kwargs)
                spawned.append(executor)
                return executor

        monkeypatch.setattr(scheduler_module, "ProcessExecutor", FlakyExecutor)
        with pytest.raises(OSError):
            Scheduler(workers=2, mode="process")
        assert len(spawned) == 1
        assert spawned[0]._process.poll() is not None  # child reaped
