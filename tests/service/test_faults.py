"""The fault-injection harness: arming, firing, and env activation."""

import time

import pytest

from repro.service import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


class TestArming:
    def test_unarmed_points_never_fire(self):
        for point in faults.POINTS:
            assert not faults.fire(point)

    def test_fire_consumes_armed_count(self):
        faults.arm("kill-child", times=2)
        assert faults.fire("kill-child")
        assert faults.fire("kill-child")
        assert not faults.fire("kill-child")

    def test_unbounded_arming(self):
        faults.arm("delay", times=None)
        assert all(faults.fire("delay") for _ in range(10))
        faults.disarm("delay")
        assert not faults.fire("delay")

    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError):
            faults.arm("meteor-strike")
        with pytest.raises(ValueError):
            faults.fire("meteor-strike") if False else faults.disarm("nope")

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            faults.arm("delay", times=0)
        with pytest.raises(ValueError):
            faults.arm("delay", delay_ms=-1)

    def test_active_snapshot(self):
        faults.arm("queue-stall", times=3, delay_ms=25)
        active = faults.active()
        assert active == {"queue-stall": {"remaining": 3, "delay_ms": 25}}

    def test_reset_clears_everything(self):
        faults.arm("kill-child", times=None)
        faults.arm("delay")
        faults.reset()
        assert faults.active() == {}


class TestSleepIfArmed:
    def test_sleeps_the_armed_delay(self):
        faults.arm("delay", times=1, delay_ms=30)
        started = time.monotonic()
        assert faults.sleep_if_armed("delay")
        assert (time.monotonic() - started) >= 0.025
        assert not faults.sleep_if_armed("delay")

    def test_noop_when_unarmed(self):
        started = time.monotonic()
        assert not faults.sleep_if_armed("delay")
        assert (time.monotonic() - started) < 0.02


class TestEnvActivation:
    def test_spec_parsing(self):
        count = faults.load_env("kill-child:1,delay:3:50")
        assert count == 2
        assert faults.active() == {
            "kill-child": {"remaining": 1, "delay_ms": 0.0},
            "delay": {"remaining": 3, "delay_ms": 50.0},
        }

    def test_bare_point_defaults_to_once(self):
        faults.load_env("corrupt-frame")
        assert faults.active()["corrupt-frame"]["remaining"] == 1

    def test_unbounded_spellings(self):
        faults.load_env("delay:inf,queue-stall:*:5")
        assert faults.active()["delay"]["remaining"] is None
        assert faults.active()["queue-stall"]["remaining"] is None

    def test_empty_and_whitespace_specs(self):
        assert faults.load_env("") == 0
        assert faults.load_env(" , ,") == 0

    def test_malformed_specs_raise(self):
        with pytest.raises(ValueError):
            faults.load_env("kill-child:1:2:3")
        with pytest.raises(ValueError):
            faults.load_env("not-a-point")
        with pytest.raises(ValueError):
            faults.load_env("delay:soon")
