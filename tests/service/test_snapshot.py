"""Snapshot persistence: round-trip equivalence and the table fast path."""

from repro.service import (
    Dispatcher,
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)
from repro.service.workspace import ParseSession

import pytest

#: Unambiguous expression grammar — SLR(1)-deterministic, so its snapshot
#: ships a parse table.
EXPR = """
    START ::= E
    E ::= E + T
    E ::= T
    T ::= T * F
    T ::= F
    F ::= n
    F ::= ( E )
"""

#: Ambiguous grammar — no deterministic table exists.
AMBIGUOUS = """
    START ::= E
    E ::= n
    E ::= E + E
"""

SENTENCES = ["n", "n + n", "n + n * n", "( n + n ) * n", "n +", "* n"]


def equivalent(left: ParseSession, right: ParseSession, sentences) -> None:
    for sentence in sentences:
        a = left.parse_payload(sentence)
        b = right.parse_payload(sentence)
        assert a["accepted"] == b["accepted"], sentence
        assert len(a["trees"]) == len(b["trees"]), sentence


class TestRoundTrip:
    def test_deterministic_grammar_ships_a_table(self):
        session = ParseSession("expr", EXPR)
        payload = session_to_dict(session)
        assert payload["table"] is not None
        restored = session_from_dict(payload)
        assert restored.has_fast_path
        equivalent(session, restored, SENTENCES)

    def test_ambiguous_grammar_ships_no_table(self):
        session = ParseSession("amb", AMBIGUOUS)
        payload = session_to_dict(session)
        assert payload["table"] is None
        restored = session_from_dict(payload)
        assert not restored.has_fast_path
        equivalent(session, restored, ["n", "n + n", "n + n + n", "+ n"])

    def test_ambiguous_tree_counts_survive(self):
        session = ParseSession("amb", AMBIGUOUS)
        restored = session_from_dict(session_to_dict(session))
        assert len(restored.parse_payload("n + n + n")["trees"]) == 2

    def test_empty_session_round_trips(self):
        restored = session_from_dict(session_to_dict(ParseSession("empty")))
        assert len(restored.ipg.grammar) == 0
        assert restored.parse_payload("x")["accepted"] is False

    def test_sorts_survive_the_round_trip(self):
        session = ParseSession("fwd", "START ::= CMD\nCMD ::= turn N",
                               sorts=["N"])
        restored = session_from_dict(session_to_dict(session))
        # N must still be a non-terminal: defining it now must take effect.
        assert restored.add_rule("N ::= 1")
        assert restored.recognize_payload("turn 1")["accepted"] is True

    def test_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "expr.session.json")
        session = ParseSession("expr", EXPR)
        save_session(session, path)
        restored = load_session(path)
        assert restored.name == "expr"
        equivalent(session, restored, SENTENCES)

    def test_restore_under_a_new_name(self, tmp_path):
        path = str(tmp_path / "expr.session.json")
        save_session(ParseSession("expr", EXPR), path)
        assert load_session(path, name="clone").name == "clone"

    def test_bad_payloads_are_rejected(self):
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            session_from_dict({"format": 99, "kind": "ipg-session"})
        with pytest.raises(ServiceError):
            session_from_dict({"format": 1, "kind": "something-else"})


class TestFastPath:
    def test_fast_path_is_dropped_on_modify(self):
        restored = session_from_dict(session_to_dict(ParseSession("expr", EXPR)))
        assert restored.has_fast_path
        restored.add_rule("F ::= x")
        assert not restored.has_fast_path
        assert restored.recognize_payload("x + n")["accepted"] is True

    def test_fast_path_agrees_with_pool_parser(self):
        cold = ParseSession("expr", EXPR)
        warm = session_from_dict(session_to_dict(cold))
        equivalent(cold, warm, SENTENCES)
        # And the trees are byte-identical, not merely equinumerous.
        assert (
            warm.parse_payload("n + n * n")["trees"]
            == cold.parse_payload("n + n * n")["trees"]
        )

    def test_resnapshot_of_restored_session_reuses_table(self):
        warm = session_from_dict(session_to_dict(ParseSession("expr", EXPR)))
        payload = session_to_dict(warm)
        assert payload["table"] is not None


class TestThroughTheProtocol:
    def test_snapshot_restore_exchange(self, tmp_path):
        path = str(tmp_path / "s1.session.json")
        d = Dispatcher()
        d.handle({"cmd": "open", "session": "s1", "grammar": EXPR})
        saved = d.handle({"cmd": "snapshot", "session": "s1", "path": path})
        assert saved["saved"] == path
        assert saved["deterministic"] is True

        restored = d.handle({"cmd": "restore", "session": "warm", "path": path})
        assert restored["fast_path"] is True
        assert restored["version"] == 7

        cold = d.handle({"cmd": "parse", "session": "s1", "tokens": "n + n"})
        warm = d.handle({"cmd": "parse", "session": "warm", "tokens": "n + n"})
        assert warm["accepted"] and warm["trees"] == cold["trees"]

    def test_inline_snapshot_payload(self):
        d = Dispatcher()
        d.handle({"cmd": "open", "session": "s1", "grammar": AMBIGUOUS})
        snap = d.handle({"cmd": "snapshot", "session": "s1"})
        assert snap["deterministic"] is False
        restored = d.handle(
            {"cmd": "restore", "session": "s2", "snapshot": snap["snapshot"]}
        )
        assert restored["restored"] == "s2"
        response = d.handle({"cmd": "parse", "session": "s2",
                             "tokens": "n + n + n"})
        assert response["tree_count"] == 2

    def test_restore_refuses_to_clobber_without_force(self):
        d = Dispatcher()
        d.handle({"cmd": "open", "session": "s1", "grammar": AMBIGUOUS})
        snap = d.handle({"cmd": "snapshot", "session": "s1"})["snapshot"]
        clash = d.handle({"cmd": "restore", "session": "s1", "snapshot": snap})
        assert "error" in clash
        forced = d.handle({"cmd": "restore", "session": "s1",
                           "snapshot": snap, "force": True})
        assert forced["restored"] == "s1"


class TestVersionContinuity:
    def test_restore_never_regresses_the_version(self):
        session = ParseSession("s", AMBIGUOUS)
        for _ in range(3):                      # edit churn: +6 revisions
            session.add_rule("E ::= maybe")
            session.delete_rule("E ::= maybe")
        saved_version = session.version
        restored = session_from_dict(session_to_dict(session))
        assert restored.version == saved_version
        restored.add_rule("E ::= extra")
        assert restored.version == saved_version + 1

    def test_conflicted_table_is_rejected_at_attach(self):
        from repro.lr.slr import slr_table
        from repro.service import ServiceError

        ambiguous = ParseSession("amb", AMBIGUOUS)
        conflicted = slr_table(ambiguous.ipg.grammar.copy())
        assert not conflicted.is_deterministic
        with pytest.raises(ServiceError):
            ParseSession("victim", EXPR).attach_fast_path(conflicted)

    def test_corrupted_snapshot_table_surfaces_as_protocol_error(self):
        d = Dispatcher()
        d.handle({"cmd": "open", "session": "det", "grammar": EXPR})
        d.handle({"cmd": "snapshot", "session": "det"})
        d.handle({"cmd": "open", "session": "amb", "grammar": AMBIGUOUS})
        bad = d.handle({"cmd": "snapshot", "session": "amb"})["snapshot"]
        # Graft the ambiguous grammar's (conflicted) table... there is none,
        # so fabricate the corruption the other way: a conflicted table from
        # slr_table under a deterministic-looking snapshot.
        from repro.lr.serialize import table_to_dict
        from repro.lr.slr import slr_table
        from repro.grammar.builders import grammar_from_text

        bad["table"] = table_to_dict(slr_table(grammar_from_text(AMBIGUOUS)))
        response = d.handle({"cmd": "restore", "session": "boom", "snapshot": bad})
        assert "error" in response and "conflict" in response["error"]

    def test_stale_table_for_a_different_grammar_is_rejected(self):
        session = ParseSession("det", EXPR)
        payload = session_to_dict(session)
        # Corrupt the snapshot: change the grammar but keep the old table.
        payload["grammar"]["text"] += "\nF ::= maybe"
        from repro.service import ServiceError

        with pytest.raises(ServiceError, match="different grammar"):
            session_from_dict(payload)

    def test_snapshot_table_is_memoized_per_version(self):
        session = ParseSession("det", EXPR)
        first = session.deterministic_table()
        assert first is not None
        assert session.deterministic_table() is first      # cached
        session.add_rule("F ::= y")
        second = session.deterministic_table()
        assert second is not None and second is not first  # recomputed
