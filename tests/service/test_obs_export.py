"""The metrics-export command and per-request tracing, end to end.

These tests exercise the *global* obs registry through the service — they
assert presence and deltas, never absolute totals, and never reset the
registry (module-cached instruments in the library would go stale).
"""

from __future__ import annotations

import pytest

from repro.service import Dispatcher, Scheduler

BOOLEANS = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B\nB ::= B and B"


def _counter_value(metrics, key):
    entry = metrics.get(key)
    return entry["value"] if entry else 0


@pytest.fixture()
def worked_dispatcher():
    """A dispatcher that has done a bit of everything observable."""
    dispatcher = Dispatcher()
    assert "error" not in dispatcher.handle(
        {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
    )
    for _ in range(2):  # second run is a result-cache hit
        assert dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true or false"}
        )["accepted"]
    checkpointed = dispatcher.handle(
        {"cmd": "parse", "session": "s1", "tokens": "true and false",
         "checkpoint": True}
    )
    assert checkpointed["accepted"]
    edited = dispatcher.handle(
        {"cmd": "edit-parse", "session": "s1", "base": checkpointed["result"],
         "edit": {"start": 2, "end": 3, "replacement": "true"}}
    )
    assert edited["accepted"]
    return dispatcher


class TestMetricsExport:
    def test_prometheus_is_the_default_format(self, worked_dispatcher):
        response = worked_dispatcher.handle({"cmd": "metrics-export"})
        assert response["format"] == "prometheus"
        text = response["text"]
        assert "# TYPE repro_lazy_table_fraction gauge" in text
        assert "repro_parse_accepted" in text
        assert 'repro_service_requests{cmd="parse"}' in text

    def test_json_export_covers_the_metric_catalog(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "metrics-export", "format": "json"}
        )
        metrics = response["metrics"]
        # the acceptance-list series: lazy generation, compiled action
        # cache, result cache, incremental reuse, engine work, latency
        for key in (
            "repro.lazy.states_materialized",
            "repro.lazy.full_table_states",
            "repro.lazy.table_fraction",
            "repro.generator.expansions",
            "repro.compiled.action_cache.hits",
            "repro.compiled.action_cache.misses",
            "repro.result_cache.hits",
            "repro.result_cache.misses",
            'repro.incremental.reparse{outcome="resumed",reason="none"}',
            "repro.parse.seconds",
            'repro.service.requests{cmd="parse"}',
        ):
            assert key in metrics, f"missing {key}"
        fraction = metrics["repro.lazy.table_fraction"]["value"]
        assert 0.0 < fraction <= 1.0
        assert metrics["repro.parse.seconds"]["type"] == "histogram"
        assert metrics["repro.parse.seconds"]["count"] > 0

    def test_result_cache_hit_is_counted(self, worked_dispatcher):
        metrics = worked_dispatcher.handle(
            {"cmd": "metrics-export", "format": "json"}
        )["metrics"]
        assert _counter_value(metrics, "repro.result_cache.hits") >= 1

    def test_unknown_format_is_a_protocol_error(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "metrics-export", "format": "xml"}
        )
        assert "xml" in response["error"]

    def test_spans_field_returns_recent_trees(self, worked_dispatcher):
        worked_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true", "trace": True}
        )
        response = worked_dispatcher.handle(
            {"cmd": "metrics-export", "format": "json", "spans": 5}
        )
        spans = response["spans"]
        assert isinstance(spans, list) and spans
        assert any(tree["name"] == "request" for tree in spans)

    def test_boolean_spans_field_is_ignored(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "metrics-export", "format": "json", "spans": True}
        )
        assert "spans" not in response

    def test_counters_grow_with_work(self, worked_dispatcher):
        key = 'repro.service.requests{cmd="parse"}'
        before = _counter_value(
            worked_dispatcher.handle(
                {"cmd": "metrics-export", "format": "json"}
            )["metrics"],
            key,
        )
        worked_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "false"}
        )
        after = _counter_value(
            worked_dispatcher.handle(
                {"cmd": "metrics-export", "format": "json"}
            )["metrics"],
            key,
        )
        assert after == before + 1


class TestRequestTracing:
    def test_trace_true_returns_the_span_tree(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "false or true",
             "trace": True}
        )
        tree = response["trace"]
        assert tree["name"] == "request"
        assert tree["attributes"]["cmd"] == "parse"
        assert tree["duration"] > 0.0

    def test_child_durations_sum_within_the_korp_time(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true or true or false",
             "trace": True}
        )
        tree = response["trace"]
        children_sum = sum(c["duration"] for c in tree.get("children", ()))
        # rounding in to_dict() can move each duration by <=1us
        slack = 1e-5
        assert children_sum <= tree["duration"] + slack
        assert tree["duration"] <= response["time"] + slack

    def test_untraced_requests_carry_no_tree(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true"}
        )
        assert "trace" not in response

    def test_error_responses_are_traced_too(self, worked_dispatcher):
        response = worked_dispatcher.handle(
            {"cmd": "parse", "session": "ghost", "tokens": "x", "trace": True}
        )
        assert "error" in response
        assert response["trace"]["name"] == "request"


class TestSchedulerExport:
    def test_thread_mode_export_includes_shard_series(self):
        with Scheduler(workers=2, mode="thread") as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
            )
            scheduler.handle(
                {"cmd": "parse", "session": "s1", "tokens": "true"}
            )
            metrics = scheduler.handle(
                {"cmd": "metrics-export", "format": "json"}
            )["metrics"]
        shard_keys = [key for key in metrics if key.startswith("repro.shard.")]
        assert any("submitted" in key for key in shard_keys)
        assert any("repro.shard.request.seconds" in key for key in shard_keys)

    def test_traced_response_names_its_shard(self):
        with Scheduler(workers=2, mode="thread") as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
            )
            response = scheduler.handle(
                {"cmd": "parse", "session": "s1", "tokens": "true",
                 "trace": True}
            )
        attributes = response["trace"]["attributes"]
        assert attributes["shard"] == scheduler.shard_of("s1")
        assert attributes["queue_wait"] >= 0.0

    def test_process_mode_merges_child_registries(self):
        with Scheduler(workers=2, mode="process") as scheduler:
            for index in range(3):
                name = f"s{index}"
                scheduler.handle(
                    {"cmd": "open", "session": name, "grammar": BOOLEANS}
                )
                scheduler.handle(
                    {"cmd": "parse", "session": name, "tokens": "true or false"}
                )
            response = scheduler.handle(
                {"cmd": "metrics-export", "format": "json"}
            )
        merged = response["metrics"]
        # "shards" holds the per-child snapshot dicts; "parent" the
        # scheduler process's own registry snapshot
        parts = list(response["shards"]) + [response["parent"]]
        # every merged counter equals the sum over child + parent parts
        for key, entry in merged.items():
            if entry.get("type") != "counter":
                continue
            total = sum(_counter_value(part, key) for part in parts)
            assert entry["value"] == total, key
        key = 'repro.service.requests{cmd="parse"}'
        assert _counter_value(merged, key) >= 3
        fraction = merged["repro.lazy.table_fraction"]["value"]
        assert 0.0 < fraction <= 1.0

    def test_process_mode_prometheus_renders_in_the_parent(self):
        with Scheduler(workers=2, mode="process") as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
            )
            response = scheduler.handle({"cmd": "metrics-export"})
        assert response["format"] == "prometheus"
        assert "repro_service_requests" in response["text"]
        assert "metrics" not in response
        assert "shards" not in response
