"""The v3 ``edit-parse`` command and the per-session checkpoint store."""

from __future__ import annotations

import pytest

from repro.service.dispatcher import Dispatcher
from repro.service.scheduler import Scheduler
from repro.service.workspace import CHECKPOINT_CAPACITY

GRAMMAR = "E ::= a\nE ::= b\nE ::= E + a\nE ::= E + b\nSTART ::= E"


@pytest.fixture()
def dispatcher():
    d = Dispatcher()
    response = d.handle({"cmd": "open", "session": "s", "grammar": GRAMMAR})
    assert response["opened"] == "s"
    return d


def checkpoint_parse(dispatcher, tokens, **extra):
    response = dispatcher.handle(
        {"cmd": "parse", "session": "s", "tokens": tokens, "checkpoint": True, **extra}
    )
    assert "error" not in response, response
    return response


def edit_parse(dispatcher, base, start, end, replacement="", **extra):
    return dispatcher.handle(
        {
            "cmd": "edit-parse",
            "session": "s",
            "base": base,
            "edit": {"start": start, "end": end, "replacement": replacement},
            **extra,
        }
    )


class TestCheckpointParse:
    def test_response_carries_a_result_id(self, dispatcher):
        response = checkpoint_parse(dispatcher, "a + a")
        assert response["accepted"] is True
        assert isinstance(response["result"], str) and response["result"]
        assert response["cache"] is False

    def test_repeat_is_a_cache_hit_with_the_same_id(self, dispatcher):
        first = checkpoint_parse(dispatcher, "a + a")
        second = checkpoint_parse(dispatcher, "a + a")
        assert second["cache"] is True
        assert second["result"] == first["result"]

    def test_plain_parse_has_no_result_id(self, dispatcher):
        response = dispatcher.handle(
            {"cmd": "parse", "session": "s", "tokens": "a + a"}
        )
        assert "result" not in response


class TestEditParse:
    def test_edit_reuses_checkpoints(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a + b")["result"]
        response = edit_parse(dispatcher, base, 2, 3, "b")
        assert response["accepted"] is True
        assert response["base"] == base
        assert response["reuse"]["reused_prefix"] == 2
        assert response["trees"] == ["START(E(E(E(a) + b) + b))"]
        assert response["tree_count"] == 1

    def test_matches_a_scratch_parse(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a + b")["result"]
        edited = edit_parse(dispatcher, base, 0, 1, "b")
        scratch = dispatcher.handle(
            {"cmd": "parse", "session": "s", "tokens": "b + a + b"}
        )
        assert edited["accepted"] == scratch["accepted"] is True
        assert edited["trees"] == scratch["trees"]

    def test_repeated_edit_is_cached(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a")["result"]
        first = edit_parse(dispatcher, base, 2, 3, "b")
        second = edit_parse(dispatcher, base, 2, 3, "b")
        assert first["cache"] is False
        assert second["cache"] is True
        assert second["result"] == first["result"]

    def test_chained_edits_resume_from_the_previous_edit(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a + b")["result"]
        first = edit_parse(dispatcher, base, 4, 5, "a")
        second = edit_parse(dispatcher, first["result"], 0, 1, "b")
        assert second["accepted"] is True
        assert second["trees"] == ["START(E(E(E(b) + a) + a))"]

    def test_rejecting_edit_reports_diagnostics(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a")["result"]
        response = edit_parse(dispatcher, base, 1, 2, "b")
        assert response["accepted"] is False
        assert response["diagnostics"]["token_index"] == 1
        assert response["diagnostics"]["expected"] == ["$", "+"]

    def test_unknown_base_is_an_error(self, dispatcher):
        response = edit_parse(dispatcher, "doesnotexist", 0, 0)
        assert "unknown result" in response["error"]

    def test_grammar_edit_drops_the_checkpoint_store(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a")["result"]
        dispatcher.handle(
            {"cmd": "add-rule", "session": "s", "rule": "E ::= E + c"}
        )
        response = edit_parse(dispatcher, base, 2, 3, "c")
        assert "unknown result" in response["error"]
        # Re-establishing a checkpoint under the new version works.
        fresh = checkpoint_parse(dispatcher, "a + a")["result"]
        again = edit_parse(dispatcher, fresh, 2, 3, "c")
        assert again["accepted"] is True

    def test_engine_field_is_honoured(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a + a", engine="lazy")["result"]
        response = edit_parse(dispatcher, base, 2, 3, "b", engine="lazy")
        assert response["accepted"] is True
        assert response["engine"] == "lazy"

    def test_out_of_range_edit_is_an_error_response(self, dispatcher):
        base = checkpoint_parse(dispatcher, "a")["result"]
        response = edit_parse(dispatcher, base, 0, 9)
        assert "edit range" in response["error"]

    @pytest.mark.parametrize(
        "request_patch, fragment",
        [
            ({"base": 7}, "result id string"),
            ({"edit": "nope"}, "object in the 'edit' field"),
            ({"edit": {"start": "x", "end": 1}}, "integer 'start' and 'end'"),
            ({"edit": {"start": 0, "end": 0, "replacement": 5}}, "string or"),
        ],
    )
    def test_malformed_requests(self, dispatcher, request_patch, fragment):
        base = checkpoint_parse(dispatcher, "a")["result"]
        request = {
            "cmd": "edit-parse",
            "session": "s",
            "base": base,
            "edit": {"start": 0, "end": 0, "replacement": ""},
        }
        request.update(request_patch)
        response = dispatcher.handle(request)
        assert fragment in response["error"]

    def test_store_capacity_evicts_oldest(self, dispatcher):
        first = checkpoint_parse(dispatcher, "a")["result"]
        for index in range(CHECKPOINT_CAPACITY):
            checkpoint_parse(dispatcher, "a" + " + a" * (index + 1))
        response = edit_parse(dispatcher, first, 0, 1, "b")
        assert "unknown result" in response["error"]


class TestCheckpointRecognize:
    """Recognition-mode checkpoints: the convergence-friendly regime."""

    def test_recognize_checkpoint_returns_a_result_id(self, dispatcher):
        response = dispatcher.handle(
            {
                "cmd": "recognize",
                "session": "s",
                "tokens": "a + a + b",
                "checkpoint": True,
            }
        )
        assert response["accepted"] is True
        assert isinstance(response["result"], str)
        assert "trees" not in response

    def test_edit_over_a_recognition_base_converges(self, dispatcher):
        base = dispatcher.handle(
            {
                "cmd": "recognize",
                "session": "s",
                "tokens": "a + a + b + a",
                "checkpoint": True,
            }
        )["result"]
        response = edit_parse(dispatcher, base, 2, 3, "b")
        assert response["accepted"] is True
        assert "trees" not in response and "tree_count" not in response
        assert response["reuse"]["converged_at"] is not None
        assert response["reuse"]["parsed_tokens"] < 4

    def test_recognition_chain_and_cache(self, dispatcher):
        base = dispatcher.handle(
            {
                "cmd": "recognize",
                "session": "s",
                "tokens": "a + a",
                "checkpoint": True,
            }
        )["result"]
        first = edit_parse(dispatcher, base, 2, 3, "b")
        second = edit_parse(dispatcher, first["result"], 0, 1, "b")
        assert second["accepted"] is True
        repeat = edit_parse(dispatcher, first["result"], 0, 1, "b")
        assert repeat["cache"] is True

    def test_parse_and_recognize_checkpoints_have_distinct_ids(self, dispatcher):
        parsed = checkpoint_parse(dispatcher, "a + a")["result"]
        recognized = dispatcher.handle(
            {
                "cmd": "recognize",
                "session": "s",
                "tokens": "a + a",
                "checkpoint": True,
            }
        )["result"]
        assert parsed != recognized


class TestSchedulerRouting:
    def test_edit_parse_routes_through_the_sharded_scheduler(self):
        scheduler = Scheduler(workers=2, mode="thread")
        try:
            scheduler.submit(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            ).result(10)
            parsed = scheduler.submit(
                {
                    "cmd": "parse",
                    "session": "s",
                    "tokens": "a + a",
                    "checkpoint": True,
                }
            ).result(10)
            assert parsed["accepted"] is True
            edited = scheduler.submit(
                {
                    "cmd": "edit-parse",
                    "session": "s",
                    "base": parsed["result"],
                    "edit": {"start": 2, "end": 3, "replacement": "b"},
                }
            ).result(10)
            assert edited["accepted"] is True
            assert edited["reuse"]["reused_prefix"] == 2
        finally:
            scheduler.close()
