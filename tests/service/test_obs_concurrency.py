"""metrics-export under fire: exports racing live parse traffic.

The export path snapshots the global registry (plus, in process mode,
every child registry) while workers are mid-increment.  These tests
hammer exactly that interleaving and check the two invariants a torn
snapshot breaks: counter series are monotone non-decreasing across
successive exports, and a process-mode merge equals the sum of its
parts.  The global registry is never reset — all assertions are deltas
or monotonicity, never absolute totals.
"""

import threading

import pytest

from repro.service import Scheduler

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B\nB ::= B and B"

INPUTS = ["true", "false or true", "true and false or true", "false and false"]


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)


# Collector-fed families are sums over *live* owners (languages,
# workspaces, schedulers) — an unrelated test's owner being garbage
# collected mid-hammer legitimately lowers them.  Monotonicity only
# holds for real instrument counters, so the check skips these.
_COLLECTED = (
    "repro.generator.",
    "repro.compiled.",
    "repro.result_cache.",
    "repro.workspace.",
    "repro.shard.",
)


def _counter_items(metrics, skip_collected=False):
    return {
        key: entry["value"]
        for key, entry in metrics.items()
        if isinstance(entry, dict)
        and entry.get("type") == "counter"
        and not (skip_collected and key.startswith(_COLLECTED))
    }


def _hammer(scheduler, sessions, parses_per_session, exports, errors):
    """Build the worker closures: one parser per session plus one exporter."""

    def parser(name):
        def work():
            try:
                for step in range(parses_per_session):
                    response = scheduler.handle(
                        {
                            "cmd": "parse",
                            "session": name,
                            "tokens": INPUTS[step % len(INPUTS)],
                        }
                    )
                    assert response["accepted"], response
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        return work

    def exporter():
        try:
            for _ in range(12):
                response = scheduler.handle(
                    {"cmd": "metrics-export", "format": "json"}
                )
                assert "error" not in response, response
                exports.append(response)
        except Exception as error:  # noqa: BLE001 — collected for assert
            errors.append(error)

    return [parser(name) for name in sessions] + [exporter]


def _assert_counters_monotone(exports):
    assert len(exports) >= 2
    previous = _counter_items(exports[0]["metrics"], skip_collected=True)
    for response in exports[1:]:
        current = _counter_items(response["metrics"], skip_collected=True)
        for key, before in previous.items():
            after = current.get(key)
            if after is None:
                continue  # series vanished (e.g. collector owner died)
            assert after >= before, f"{key} went backwards: {before} -> {after}"
        previous = current


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_exports_race_parses_and_counters_stay_monotone(mode):
    sessions = [f"obs-c-{mode}-{i}" for i in range(6)]
    exports, errors = [], []
    with Scheduler(workers=2, mode=mode) as scheduler:
        for name in sessions:
            assert "error" not in scheduler.handle(
                {"cmd": "open", "session": name, "grammar": GRAMMAR}
            )
        baseline = scheduler.handle({"cmd": "metrics-export", "format": "json"})
        run_threads(_hammer(scheduler, sessions, 40, exports, errors))
        final = scheduler.handle({"cmd": "metrics-export", "format": "json"})
    assert not errors
    exports.insert(0, baseline)
    exports.append(final)
    _assert_counters_monotone(exports)
    # all the work is visible in the final export: the request counter
    # grew by at least one per submitted parse (deltas, never absolutes —
    # the registry is global and other tests feed it too)
    key = 'repro.service.requests{cmd="parse"}'
    submitted = len(sessions) * 40
    before = _counter_items(baseline["metrics"]).get(key, 0)
    after = _counter_items(final["metrics"])[key]
    assert after - before >= submitted


def test_process_mode_merge_equals_shard_sums_under_load():
    sessions = [f"obs-m-{i}" for i in range(6)]
    exports, errors = [], []
    with Scheduler(workers=3, mode="process") as scheduler:
        for name in sessions:
            assert "error" not in scheduler.handle(
                {"cmd": "open", "session": name, "grammar": GRAMMAR}
            )
        run_threads(_hammer(scheduler, sessions, 30, exports, errors))
    assert not errors
    # every export taken mid-hammer must already balance: each snapshot
    # set (shards + parent) was collected for that one merge
    for response in exports:
        parts = list(response["shards"]) + [response["parent"]]
        merged = _counter_items(response["metrics"])
        for key, value in merged.items():
            total = sum(
                part[key]["value"] for part in parts if key in part
            )
            assert value == total, f"{key}: merged {value} != parts {total}"
