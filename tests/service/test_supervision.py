"""Backoff and circuit-breaker state machines, driven by synthetic clocks."""

import random

import pytest

from repro.service.supervision import BackoffPolicy, CircuitBreaker


class TestBackoffPolicy:
    def test_ceiling_grows_exponentially_and_caps(self):
        policy = BackoffPolicy(base_ms=10, factor=2.0, max_ms=100, jitter=False)
        assert [policy.ceiling_ms(n) for n in range(6)] == [
            10,
            20,
            40,
            80,
            100,
            100,
        ]

    def test_negative_attempt_clamps_to_base(self):
        policy = BackoffPolicy(base_ms=10, jitter=False)
        assert policy.delay_ms(-3) == 10

    def test_jitter_stays_within_the_ceiling(self):
        policy = BackoffPolicy(
            base_ms=10, factor=2.0, max_ms=1000, rng=random.Random(7)
        )
        for attempt in range(8):
            for _ in range(50):
                delay = policy.delay_ms(attempt)
                assert 0.0 <= delay <= policy.ceiling_ms(attempt)

    def test_jitter_actually_varies(self):
        policy = BackoffPolicy(base_ms=100, rng=random.Random(7))
        delays = {policy.delay_ms(3) for _ in range(20)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_ms=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)


class TestCircuitBreaker:
    def test_stays_closed_under_the_limit(self):
        breaker = CircuitBreaker(max_restarts=3, window_seconds=60)
        assert all(breaker.record(float(t)) for t in range(3))
        assert not breaker.tripped

    def test_trips_beyond_the_limit_in_window(self):
        breaker = CircuitBreaker(max_restarts=3, window_seconds=60)
        for t in range(3):
            assert breaker.record(float(t))
        assert not breaker.record(3.0)
        assert breaker.tripped

    def test_old_events_fall_out_of_the_window(self):
        breaker = CircuitBreaker(max_restarts=2, window_seconds=10)
        assert breaker.record(0.0)
        assert breaker.record(1.0)
        # Both earlier restarts are out of the window by t=20.
        assert breaker.record(20.0)
        assert not breaker.tripped

    def test_tripped_is_terminal(self):
        breaker = CircuitBreaker(max_restarts=1, window_seconds=60)
        assert breaker.record(0.0)
        assert not breaker.record(0.1)
        # Even far outside the window: degraded needs an operator.
        assert not breaker.record(10_000.0)

    def test_window_count_drives_backoff_growth(self):
        breaker = CircuitBreaker(max_restarts=10, window_seconds=60)
        breaker.record(0.0)
        breaker.record(1.0)
        assert breaker.window_count(1.0) == 2
        assert breaker.window_count(100.0) == 0

    def test_stats_shape(self):
        breaker = CircuitBreaker(max_restarts=2, window_seconds=5)
        breaker.record(0.0)
        stats = breaker.stats()
        assert stats["total_restarts"] == 1
        assert stats["tripped"] is False
        assert stats["max_restarts"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(max_restarts=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window_seconds=0)
