"""The LRU result cache: recency, eviction, invalidation, stats."""

from repro.service.cache import ResultCache

import pytest


def key(session="s", version=1, mode="parse", tokens=("true",)):
    return (session, version, mode, tuple(tokens))


class TestLookup:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        found, value = cache.get(key())
        assert not found and value is None
        cache.put(key(), {"accepted": True})
        found, value = cache.get(key())
        assert found and value == {"accepted": True}

    def test_distinct_versions_are_distinct_entries(self):
        cache = ResultCache(capacity=4)
        cache.put(key(version=1), "old")
        cache.put(key(version=2), "new")
        assert cache.get(key(version=1)) == (True, "old")
        assert cache.get(key(version=2)) == (True, "new")

    def test_stats_count_hits_and_misses(self):
        cache = ResultCache(capacity=4)
        cache.get(key())
        cache.put(key(), 1)
        cache.get(key())
        cache.get(key())
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_order(self):
        cache = ResultCache(capacity=2)
        cache.put(key(tokens=("a",)), 1)
        cache.put(key(tokens=("b",)), 2)
        cache.get(key(tokens=("a",)))          # refresh 'a'
        cache.put(key(tokens=("c",)), 3)       # evicts 'b', not 'a'
        assert key(tokens=("a",)) in cache
        assert key(tokens=("b",)) not in cache
        assert key(tokens=("c",)) in cache
        assert cache.stats.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestInvalidation:
    def test_invalidate_drops_only_that_session(self):
        cache = ResultCache(capacity=8)
        cache.put(key(session="alice"), 1)
        cache.put(key(session="alice", tokens=("false",)), 2)
        cache.put(key(session="bob"), 3)
        assert cache.invalidate("alice") == 2
        assert len(cache) == 1
        assert key(session="bob") in cache
        assert cache.stats.invalidations == 2

    def test_clear(self):
        cache = ResultCache(capacity=8)
        cache.put(key(), 1)
        cache.put(key(tokens=("x",)), 2)
        assert cache.clear() == 2
        assert len(cache) == 0
