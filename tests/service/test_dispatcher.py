"""The JSON request protocol: golden exchanges, caching, invalidation."""

from repro.service import Dispatcher, ProtocolError, iter_requests
from repro.service.protocol import parse_request

import pytest

BOOLEANS = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"


@pytest.fixture()
def dispatcher():
    return Dispatcher()


@pytest.fixture()
def booleans_dispatcher(dispatcher):
    response = dispatcher.handle(
        {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
    )
    assert "error" not in response
    return dispatcher


class TestResponseEnvelope:
    def test_every_response_carries_time(self, dispatcher):
        for request in (
            {"cmd": "info"},
            {"cmd": "sessions"},
            {"cmd": "metrics"},
            {"cmd": "nope"},
            {"no-cmd": True},
        ):
            assert "time" in dispatcher.handle(request)

    def test_session_is_echoed(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true"}
        )
        assert response["session"] == "s1"
        assert response["cmd"] == "parse"

    def test_errors_are_data_not_exceptions(self, dispatcher):
        assert "error" in dispatcher.handle({"cmd": "parse", "session": "ghost",
                                             "tokens": "x"})
        assert "error" in dispatcher.handle({"cmd": "parse"})
        assert "error" in dispatcher.handle({"cmd": "frobnicate"})
        assert "error" in dispatcher.handle("not a dict")
        assert "error" in dispatcher.handle({"cmd": "add-rule", "session": "s",
                                             "rule": "B -> x"})


class TestOpenParse:
    def test_golden_open(self, dispatcher):
        response = dispatcher.handle(
            {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
        )
        assert response["opened"] == "s1"
        assert response["rules"] == 4
        assert response["version"] == 4

    def test_open_twice_is_an_error_unless_forced(self, booleans_dispatcher):
        again = {"cmd": "open", "session": "s1", "grammar": BOOLEANS}
        assert "error" in booleans_dispatcher.handle(again)
        assert "error" not in booleans_dispatcher.handle({**again, "force": True})

    def test_golden_parse(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true or false"}
        )
        assert response["accepted"] is True
        assert response["tree_count"] == 1
        assert response["trees"] == ["START(B(B(true) or B(false)))"]
        assert response["cache"] is False
        assert response["version"] == 4

    def test_rejected_parse(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "or or"}
        )
        assert response["accepted"] is False
        assert response["tree_count"] == 0

    def test_recognize(self, booleans_dispatcher):
        yes = booleans_dispatcher.handle(
            {"cmd": "recognize", "session": "s1", "tokens": "false"}
        )
        no = booleans_dispatcher.handle(
            {"cmd": "recognize", "session": "s1", "tokens": "or"}
        )
        assert yes["accepted"] and not no["accepted"]
        assert yes["cache"] is False

    def test_open_with_sorts_allows_forward_references(self, dispatcher):
        dispatcher.handle(
            {"cmd": "open", "session": "fwd",
             "grammar": "START ::= CMD\nCMD ::= turn N", "sorts": ["N"]}
        )
        dispatcher.handle({"cmd": "add-rule", "session": "fwd", "rule": "N ::= 1"})
        response = dispatcher.handle(
            {"cmd": "recognize", "session": "fwd", "tokens": "turn 1"}
        )
        assert response["accepted"] is True


class TestCaching:
    def test_repeat_parse_hits_cache(self, booleans_dispatcher):
        request = {"cmd": "parse", "session": "s1", "tokens": "true"}
        first = booleans_dispatcher.handle(request)
        second = booleans_dispatcher.handle(request)
        assert first["cache"] is False
        assert second["cache"] is True
        assert second["trees"] == first["trees"]

    def test_add_rule_bumps_version_and_evicts(self, booleans_dispatcher):
        request = {"cmd": "parse", "session": "s1", "tokens": "true"}
        before = booleans_dispatcher.handle(request)
        booleans_dispatcher.handle(request)
        edit = booleans_dispatcher.handle(
            {"cmd": "add-rule", "session": "s1", "rule": "B ::= maybe"}
        )
        assert edit["added"] is True
        assert edit["version"] == before["version"] + 1
        after = booleans_dispatcher.handle(request)
        assert after["cache"] is False
        assert after["version"] == edit["version"]

    def test_delete_rule_also_evicts(self, booleans_dispatcher):
        request = {"cmd": "recognize", "session": "s1", "tokens": "true or true"}
        booleans_dispatcher.handle(request)
        assert booleans_dispatcher.handle(request)["cache"] is True
        booleans_dispatcher.handle(
            {"cmd": "delete-rule", "session": "s1", "rule": "B ::= B or B"}
        )
        after = booleans_dispatcher.handle(request)
        assert after["cache"] is False
        assert after["accepted"] is False

    def test_no_op_edit_keeps_cache_warm(self, booleans_dispatcher):
        request = {"cmd": "parse", "session": "s1", "tokens": "true"}
        booleans_dispatcher.handle(request)
        duplicate = booleans_dispatcher.handle(
            {"cmd": "add-rule", "session": "s1", "rule": "B ::= true"}
        )
        assert duplicate["added"] is False
        assert booleans_dispatcher.handle(request)["cache"] is True

    def test_sessions_cache_independently(self, booleans_dispatcher):
        booleans_dispatcher.handle(
            {"cmd": "open", "session": "s2", "grammar": BOOLEANS}
        )
        request1 = {"cmd": "parse", "session": "s1", "tokens": "true"}
        request2 = {"cmd": "parse", "session": "s2", "tokens": "true"}
        booleans_dispatcher.handle(request1)
        booleans_dispatcher.handle(request2)
        # An edit in s2 must not cost s1 its cached result.
        booleans_dispatcher.handle(
            {"cmd": "add-rule", "session": "s2", "rule": "B ::= maybe"}
        )
        assert booleans_dispatcher.handle(request1)["cache"] is True
        assert booleans_dispatcher.handle(request2)["cache"] is False


class TestForestProtocol:
    """Protocol v7: ``max_trees`` bounds and the ``ambiguity`` object."""

    AMBIGUOUS = "true or true or true or true"  # Catalan(3) = 5 parses

    def test_ambiguity_object_counts_the_whole_forest(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": self.AMBIGUOUS}
        )
        assert response["accepted"] is True
        assert response["ambiguity"] == {
            "tree_count": 5, "enumerated": 5, "truncated": False,
        }
        assert response["tree_count"] == 5
        assert len(response["trees"]) == 5

    def test_max_trees_truncates_enumeration_not_the_count(
        self, booleans_dispatcher
    ):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": self.AMBIGUOUS,
             "max_trees": 2}
        )
        assert len(response["trees"]) == 2
        assert response["ambiguity"] == {
            "tree_count": 5, "enumerated": 2, "truncated": True,
        }
        # tree_count reports the forest, not the truncated list
        assert response["tree_count"] == 5

    def test_max_trees_participates_in_the_cache_key(
        self, booleans_dispatcher
    ):
        bounded = {"cmd": "parse", "session": "s1", "tokens": self.AMBIGUOUS,
                   "max_trees": 2}
        unbounded = {"cmd": "parse", "session": "s1",
                     "tokens": self.AMBIGUOUS}
        assert booleans_dispatcher.handle(bounded)["cache"] is False
        # A differently-bounded request must not be served the entry.
        response = booleans_dispatcher.handle(unbounded)
        assert response["cache"] is False
        assert len(response["trees"]) == 5
        assert booleans_dispatcher.handle(bounded)["cache"] is True

    def test_bad_max_trees_is_a_protocol_error(self, booleans_dispatcher):
        for bad in (0, -3, "two", True):
            response = booleans_dispatcher.handle(
                {"cmd": "parse", "session": "s1", "tokens": "true",
                 "max_trees": bad}
            )
            assert "error" in response, bad

    def test_batch_parse_carries_ambiguity(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "batch-parse", "session": "s1",
             "inputs": [self.AMBIGUOUS], "max_trees": 1}
        )
        (result,) = response["results"]
        assert result["tree_count"] == 5
        assert result["ambiguity"] == {
            "tree_count": 5, "enumerated": 1, "truncated": True,
        }

    def test_gss_engine_serves_the_forest_protocol(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": self.AMBIGUOUS,
             "engine": "gss", "max_trees": 3}
        )
        assert response["accepted"] is True
        assert response["engine"] == "gss"
        assert response["ambiguity"]["tree_count"] == 5
        assert len(response["trees"]) == 3


class TestDiagnosticsAndEngines:
    """Protocol v2: structured diagnostics and per-call engine selection."""

    def test_rejected_parse_carries_diagnostics(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true or"}
        )
        assert response["accepted"] is False
        diagnostics = response["diagnostics"]
        assert diagnostics["line"] == 1
        assert diagnostics["column"] == 8
        assert diagnostics["token_index"] == 2
        assert set(diagnostics["expected"]) == {"true", "false"}

    def test_accepted_parse_has_no_diagnostics(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true"}
        )
        assert "diagnostics" not in response
        assert response["engine"] == "compiled"

    def test_recognize_diagnostics_track_edits(self, booleans_dispatcher):
        request = {"cmd": "recognize", "session": "s1", "tokens": "true or"}
        before = booleans_dispatcher.handle(request)
        assert set(before["diagnostics"]["expected"]) == {"true", "false"}
        booleans_dispatcher.handle(
            {"cmd": "add-rule", "session": "s1", "rule": "B ::= not B"}
        )
        after = booleans_dispatcher.handle(request)
        assert set(after["diagnostics"]["expected"]) == {"true", "false", "not"}

    def test_engine_selection_per_call(self, booleans_dispatcher):
        for engine in ("lazy", "dense", "gss", "earley"):
            response = booleans_dispatcher.handle(
                {"cmd": "recognize", "session": "s1", "tokens": "true or false",
                 "engine": engine}
            )
            assert response["accepted"] is True, engine
            assert response["engine"] == engine

    def test_unknown_engine_is_an_error(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true",
             "engine": "warp-drive"}
        )
        assert "unknown engine" in response["error"]

    def test_diagnostics_not_served_across_spellings(self, booleans_dispatcher):
        # Same token names, different source text: the cached rejection's
        # line/column must not leak onto the other spelling.
        multiline = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true\nor or"}
        )
        assert multiline["diagnostics"]["line"] == 2
        one_line = booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true or or"}
        )
        assert one_line["cache"] is False
        assert one_line["diagnostics"]["line"] == 1
        assert one_line["diagnostics"]["column"] == 9

    def test_engine_results_cached_separately(self, booleans_dispatcher):
        default = {"cmd": "parse", "session": "s1", "tokens": "true"}
        earley = {**default, "engine": "earley"}
        booleans_dispatcher.handle(default)
        first = booleans_dispatcher.handle(earley)
        assert first["cache"] is False      # not served the default's entry
        assert booleans_dispatcher.handle(earley)["cache"] is True

    def test_batch_parse_with_engine_and_diagnostics(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "batch-parse", "session": "s1",
             "inputs": ["true", "or"], "engine": "dense"}
        )
        good, bad = response["results"]
        assert good["accepted"] and not bad["accepted"]
        assert set(bad["diagnostics"]["expected"]) == {"true", "false"}


class TestBatchParse:
    def test_batch_reports_per_input_and_aggregate(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "batch-parse", "session": "s1",
             "inputs": ["true", "false", "true", "or"]}
        )
        accepted = [r["accepted"] for r in response["results"]]
        assert accepted == [True, True, True, False]
        assert response["cache_hits"] == 1          # the repeated "true"
        assert response["cache"] is False
        assert "time" in response

    def test_batch_needs_a_list(self, booleans_dispatcher):
        response = booleans_dispatcher.handle(
            {"cmd": "batch-parse", "session": "s1", "inputs": "true"}
        )
        assert "error" in response


class TestIntrospection:
    def test_metrics_global(self, booleans_dispatcher):
        booleans_dispatcher.handle({"cmd": "parse", "session": "s1", "tokens": "true"})
        response = booleans_dispatcher.handle({"cmd": "metrics"})
        assert response["sessions"] == 1
        assert response["cache"]["misses"] >= 1
        assert response["requests"]["parse"]["count"] == 1

    def test_metrics_per_session(self, booleans_dispatcher):
        response = booleans_dispatcher.handle({"cmd": "metrics", "session": "s1"})
        assert response["rules"] == 4
        assert "states" in response["summary"]

    def test_info(self, booleans_dispatcher):
        server = booleans_dispatcher.handle({"cmd": "info"})
        assert server["protocol"] == 7
        assert "parse" in server["commands"]
        assert "corpus-query" in server["commands"]
        assert "metrics-export" in server["commands"]
        assert "compiled" in server["engines"]
        assert server["sessions"] == ["s1"]
        session = booleans_dispatcher.handle({"cmd": "info", "session": "s1"})
        assert "B ::= true" in session["grammar"]

    def test_close(self, booleans_dispatcher):
        assert booleans_dispatcher.handle(
            {"cmd": "close", "session": "s1"}
        )["closed"] is True
        assert "error" in booleans_dispatcher.handle(
            {"cmd": "parse", "session": "s1", "tokens": "true"}
        )


class TestRequestDecoding:
    def test_single_object(self):
        assert parse_request('{"cmd":"info"}') == {"cmd": "info"}

    def test_blank_and_comment_lines(self):
        assert parse_request("") is None
        assert parse_request("   ") is None
        assert parse_request("# a comment") is None

    def test_concatenated_objects(self):
        requests = list(iter_requests('{"cmd":"a"} {"cmd":"b"}'))
        assert [r["cmd"] for r in requests] == ["a", "b"]

    def test_literal_backslash_n_separator(self):
        # What `echo '...\n...'` produces under escape-unaware shells.
        text = '{"cmd":"a"}\\n{"cmd":"b"}'
        assert [r["cmd"] for r in iter_requests(text)] == ["a", "b"]

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            list(iter_requests("{nope"))
        with pytest.raises(ProtocolError):
            list(iter_requests("[1, 2]"))


class TestWorkspaceAdoption:
    def test_re_adopting_the_same_session_keeps_subscriptions(self):
        from repro.service import session_from_dict, session_to_dict
        from repro.service.workspace import ParseSession, Workspace

        ws = Workspace()
        session = session_from_dict(
            session_to_dict(ParseSession("s", "START ::= B\nB ::= x"))
        )
        ws.adopt(session)
        ws.adopt(session, force=True)      # idempotent, must not detach
        assert session.has_fast_path
        session.add_rule("B ::= y")
        assert not session.has_fast_path   # MODIFY still drops the fast path
        assert session.recognize_payload("y")["accepted"] is True
