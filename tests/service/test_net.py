"""The asyncio TCP/UNIX front end: framing, ordering, drain, signals."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service import BackgroundServer, Scheduler

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

OPEN = {"cmd": "open", "session": "s1", "grammar": GRAMMAR}
PARSE = {"cmd": "parse", "session": "s1", "tokens": "true or false"}


def connect(server):
    sock = socket.create_connection((server.host, server.port), timeout=30)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def exchange(stream, *requests):
    """Pipeline ``requests`` on one connection; responses in order."""
    for request in requests:
        stream.write(json.dumps(request) + "\n")
    stream.flush()
    return [json.loads(stream.readline()) for _ in requests]


class TestTcpRoundTrip:
    def test_open_parse_cache(self):
        with BackgroundServer(Scheduler(workers=2)) as server:
            sock, stream = connect(server)
            try:
                opened, first, second = exchange(stream, OPEN, PARSE, PARSE)
                assert opened["opened"] == "s1"
                assert first["accepted"] is True
                # The duplicate was answered without a second parse: either
                # coalesced in the same batch or served from the cache.
                assert second["accepted"] is True
                assert second.get("coalesced") or second.get("cache")
            finally:
                sock.close()

    def test_pipelined_responses_preserve_request_order(self):
        with BackgroundServer(Scheduler(workers=4)) as server:
            sock, stream = connect(server)
            try:
                # Sessions hash to different shards, finishing at different
                # times — the connection must still answer in order.
                names = [f"p{i}" for i in range(8)]
                requests = [
                    {"cmd": "open", "session": name, "grammar": GRAMMAR}
                    for name in names
                ] + [
                    {"cmd": "parse", "session": name, "tokens": "true"}
                    for name in names
                ]
                responses = exchange(stream, *requests)
                assert [r.get("session") for r in responses] == names + names
                assert all(r["accepted"] for r in responses[8:])
            finally:
                sock.close()

    def test_bad_json_answers_error_and_keeps_connection(self):
        with BackgroundServer(Scheduler()) as server:
            sock, stream = connect(server)
            try:
                stream.write("{nope\n")
                stream.flush()
                error = json.loads(stream.readline())
                assert "error" in error
                assert exchange(stream, OPEN)[0]["opened"] == "s1"
            finally:
                sock.close()

    def test_blank_and_comment_lines_are_skipped(self):
        with BackgroundServer(Scheduler()) as server:
            sock, stream = connect(server)
            try:
                stream.write("\n# hello\n" + json.dumps(OPEN) + "\n")
                stream.flush()
                assert json.loads(stream.readline())["opened"] == "s1"
            finally:
                sock.close()

    def test_concurrent_clients_on_distinct_sessions(self):
        with BackgroundServer(Scheduler(workers=4)) as server:
            failures = []

            def client(index):
                try:
                    sock, stream = connect(server)
                    name = f"c{index}"
                    responses = exchange(
                        stream,
                        {"cmd": "open", "session": name, "grammar": GRAMMAR},
                        *[
                            {"cmd": "parse", "session": name, "tokens": "true"}
                            for _ in range(10)
                        ],
                    )
                    sock.close()
                    if responses[0].get("opened") != name:
                        failures.append(responses[0])
                    bad = [r for r in responses[1:] if not r.get("accepted")]
                    failures.extend(bad)
                except Exception as error:  # noqa: BLE001 — test thread
                    failures.append(error)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures

    def test_abrupt_disconnect_does_not_kill_the_shard(self):
        # A client that pipelines requests and vanishes cancels its
        # pending futures; the shard worker must survive resolving them
        # and keep serving other clients (regression: InvalidStateError
        # used to kill the worker thread).
        with BackgroundServer(Scheduler(workers=1)) as server:
            sock, stream = connect(server)
            stream.write(json.dumps(OPEN) + "\n")
            for _ in range(20):
                stream.write(json.dumps(PARSE) + "\n")
            stream.flush()
            sock.close()  # vanish mid-pipeline, reading nothing
            deadline = time.time() + 30
            while time.time() < deadline:
                sock2, stream2 = connect(server)
                try:
                    response = exchange(
                        stream2,
                        {"cmd": "open", "session": "alive", "grammar": GRAMMAR},
                    )[0]
                    assert response.get("opened") == "alive" or "already open" in response.get("error", "")
                    break
                finally:
                    sock2.close()
            shard = server.scheduler.shards[0]
            assert shard.join(timeout=0) is False  # worker thread alive

    def test_oversized_line_answers_error_without_crashing(self):
        from repro.service.net import MAX_LINE_BYTES

        with BackgroundServer(Scheduler()) as server:
            sock, stream = connect(server)
            try:
                stream.write("x" * (MAX_LINE_BYTES + 64) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert "exceeds" in response["error"]
            finally:
                sock.close()
            # The server is still healthy for the next client.
            sock2, stream2 = connect(server)
            assert exchange(stream2, OPEN)[0]["opened"] == "s1"
            sock2.close()

    def test_large_requests_within_the_limit_are_served(self):
        # Bigger than asyncio's 64 KiB default limit: the stdio loop has
        # no line bound, and the socket transport must match it.
        big_grammar = GRAMMAR + "".join(
            f"\nB ::= word{i}" for i in range(6000)
        )
        assert len(big_grammar) > 64 * 1024
        with BackgroundServer(Scheduler(workers=2)) as server:
            sock, stream = connect(server)
            try:
                opened, parsed = exchange(
                    stream,
                    {"cmd": "open", "session": "big", "grammar": big_grammar},
                    {"cmd": "parse", "session": "big", "tokens": "word5999"},
                )
                assert opened["opened"] == "big"
                assert parsed["accepted"] is True
            finally:
                sock.close()

    def test_client_eof_closes_cleanly(self):
        with BackgroundServer(Scheduler()) as server:
            sock, stream = connect(server)
            stream.write(json.dumps(OPEN) + "\n")
            stream.flush()
            sock.shutdown(socket.SHUT_WR)
            assert json.loads(stream.readline())["opened"] == "s1"
            assert stream.readline() == ""  # server closed after answering
            sock.close()
            assert server.server.requests_served == 1


class TestFlowControl:
    def test_nonreading_pipeliner_pauses_the_reader(self):
        # Responses far bigger than the socket buffers park the writer in
        # drain(); the in-flight bound must then stop the reader instead
        # of buffering futures without limit.
        from repro.service.net import MAX_PIPELINED

        # ~40 KiB per `info` response: big enough that kernel socket
        # buffers can only mask a few dozen unread responses, so the
        # slot bound (not buffering) dominates the observed count.
        grammar = GRAMMAR + "".join(f"\nB ::= w{i}" for i in range(3000))
        with BackgroundServer(Scheduler()) as server:
            sock, stream = connect(server)
            try:
                assert exchange(
                    stream,
                    {"cmd": "open", "session": "big", "grammar": grammar},
                )[0]["opened"] == "big"
                flood = (
                    json.dumps({"cmd": "info", "session": "big"}) + "\n"
                ).encode() * (MAX_PIPELINED * 4)
                sock.settimeout(5)
                try:
                    sock.sendall(flood)
                except socket.timeout:
                    pass  # reader paused -> client TCP window closed: good
                time.sleep(1.0)
                # +1 open request, + responses parked in socket buffers;
                # the point is the 4x flood was NOT fully read.
                assert server.server.requests_served <= MAX_PIPELINED * 2
            finally:
                sock.close()

    def test_drain_timeout_defeats_a_stuck_reader(self):
        # A peer that sends requests but never reads must not hang the
        # graceful drain forever: after drain_timeout the connection is
        # aborted and stop() returns.
        grammar = GRAMMAR + "".join(f"\nB ::= w{i}" for i in range(400))
        server = BackgroundServer(Scheduler())
        server.server.drain_timeout = 3.0
        server.start()
        sock, stream = connect(server)
        assert exchange(
            stream, {"cmd": "open", "session": "big", "grammar": grammar}
        )[0]["opened"] == "big"
        for _ in range(300):  # ~responses >> socket buffers, never read
            stream.write(json.dumps({"cmd": "info", "session": "big"}) + "\n")
        stream.flush()
        time.sleep(0.5)
        started = time.time()
        server.stop(timeout=60)
        assert time.time() - started < 30  # bounded by drain_timeout
        sock.close()


class TestUnixSocket:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        with BackgroundServer(Scheduler(), unix_path=path):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(30)
            sock.connect(path)
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            assert exchange(stream, OPEN)[0]["opened"] == "s1"
            sock.close()

    def test_restart_on_the_same_path(self, tmp_path):
        # Supervisor restart loop: a leftover socket file (clean or
        # unclean shutdown) must not make the next bind fail.
        path = str(tmp_path / "repro.sock")
        for _ in range(2):
            with BackgroundServer(Scheduler(), unix_path=path):
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(30)
                sock.connect(path)
                sock.close()

    def test_regular_file_at_the_path_is_not_clobbered(self, tmp_path):
        path = tmp_path / "not-a-socket"
        path.write_text("precious data")
        with pytest.raises(RuntimeError):
            BackgroundServer(Scheduler(), unix_path=str(path)).start()
        assert path.read_text() == "precious data"


class TestGracefulDrain:
    def test_stop_answers_pending_then_eof(self):
        server = BackgroundServer(Scheduler(workers=2)).start()
        sock, stream = connect(server)
        responses = exchange(stream, OPEN, PARSE)
        assert responses[1]["accepted"] is True
        server.stop()  # connection is still open: drain must not hang
        assert stream.readline() == ""  # EOF after the drain
        sock.close()

    def test_new_connections_refused_while_draining(self):
        server = BackgroundServer(Scheduler()).start()
        host, port = server.host, server.port
        server.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=5)


class TestSigtermSubprocess:
    """The CI smoke test's shape, pinned as a regression test."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        ready = tmp_path / "ready"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--mode",
                "thread",
                "--ready-file",
                str(ready),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not ready.exists():
                time.sleep(0.1)
            assert ready.exists(), "server never wrote the ready file"
            port = int(ready.read_text().strip().rsplit(":", 1)[1])
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            responses = exchange(stream, OPEN, PARSE)
            assert responses[1]["accepted"] is True
            process.send_signal(signal.SIGTERM)
            assert stream.readline() == ""  # drained, then EOF
            sock.close()
            _, stderr = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "drained cleanly" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)


class TestReadyFile:
    """--ready-file publishes a connectable address, atomically.

    Regression (PR 5): the ready file used to be created with a plain
    ``open(path, "w")`` — it *existed* (empty, then partially written)
    before the address landed, so a watcher acting on existence could
    read a truncated address and race the listening socket.  The file is
    now written to a temp name and ``os.replace``d in, so its existence
    alone certifies a complete address and a bound socket.
    """

    def test_write_ready_file_is_atomic_and_complete(self, tmp_path):
        from repro.service.net import write_ready_file

        path = tmp_path / "ready"
        write_ready_file(str(path), "127.0.0.1:4242")
        assert path.read_text() == "127.0.0.1:4242\n"
        # No temp debris, and an overwrite replaces the content whole.
        write_ready_file(str(path), "127.0.0.1:4243")
        assert path.read_text() == "127.0.0.1:4243\n"
        assert [p.name for p in tmp_path.iterdir()] == ["ready"]

    def test_existence_implies_connectable(self, tmp_path):
        """The instant the file exists, its content must be a complete
        address whose socket accepts connections (no [ -s ] grace)."""
        ready = tmp_path / "ready"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--ready-file",
                str(ready),
            ],
            env=env,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not ready.exists():
                time.sleep(0.005)
            assert ready.exists(), "server never wrote the ready file"
            # Read immediately on first sight of existence: the content
            # must already be the full address, and the port must accept.
            address = ready.read_text()
            assert address.endswith("\n")
            host, port_text = address.strip().rsplit(":", 1)
            assert port_text.isdigit() and int(port_text) > 0
            sock = socket.create_connection((host, int(port_text)), timeout=30)
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            responses = exchange(stream, OPEN, PARSE)
            assert responses[1]["accepted"] is True
            sock.close()
        finally:
            process.terminate()
            process.communicate(timeout=60)
