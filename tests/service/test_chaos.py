"""The chaos suite: kill shards mid-traffic, assert nothing acknowledged is lost.

The supervisor's contract under fire:

* an executor crash answers in-flight requests with the retryable
  ``shard-restarting`` shape — never a hang, never a silent drop;
* after respawn + journal replay, every *acknowledged* mutation exists
  again at the **exact** grammar version the client saw;
* a crash loop trips the circuit breaker into a terminal ``degraded``
  state that fails fast;
* a 50 ms deadline on a worst-case ambiguous input comes back as
  ``deadline-exceeded`` well within the 10x budget while the same
  scheduler keeps serving other sessions.
"""

import random
import time

import pytest

from repro.service import Scheduler, faults
from repro.service.retry import call_with_retries

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

#: Worst-case ambiguity for the deadline acceptance test: E ::= E E over
#: n tokens has a Catalan number of parses.
AMBIGUOUS = "START ::= E\nE ::= E E\nE ::= x"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def wait_for_state(shard, state, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if shard.state == state:
            return True
        time.sleep(0.02)
    return shard.state == state


def supervised_scheduler(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("mode", "process")
    kwargs.setdefault("backoff_ms", 10)
    kwargs.setdefault("max_backoff_ms", 100)
    kwargs.setdefault("max_restarts", 100)
    return Scheduler(**kwargs)


class TestCrashRecovery:
    def test_kill_answers_retryably_then_recovers_exact_state(self):
        with supervised_scheduler() as scheduler:
            opened = scheduler.handle(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            )
            assert "error" not in opened
            added = scheduler.handle(
                {"cmd": "add-rule", "session": "s", "rule": "B ::= maybe"}
            )
            acknowledged_version = added["version"]
            faults.arm("kill-child", times=1)
            crashed = scheduler.handle(
                {"cmd": "parse", "session": "s", "tokens": "maybe or true"}
            )
            assert crashed["error"] == "shard-restarting"
            assert crashed["retry_after_ms"] >= 0
            assert wait_for_state(scheduler.shards[0], "ok")
            # The retried parse sees the replayed session at the exact
            # acknowledged version, with the journaled rule intact.
            response = call_with_retries(
                scheduler.handle,
                {"cmd": "parse", "session": "s", "tokens": "maybe or true"},
            )
            assert response.get("accepted") is True
            assert response["version"] == acknowledged_version

    def test_recovery_is_within_the_backoff_budget(self):
        with supervised_scheduler() as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            )
            faults.arm("kill-child", times=1)
            started = time.monotonic()
            scheduler.handle({"cmd": "parse", "session": "s", "tokens": "true"})
            assert wait_for_state(scheduler.shards[0], "ok")
            elapsed = time.monotonic() - started
            # One restart: ~backoff (<=100ms ceiling) + respawn + replay.
            # The bound is generous for CI but far below a crash loop.
            assert elapsed < 15.0
            health = scheduler.handle({"cmd": "health"})
            assert health["restarts"] == 1

    def test_chaos_traffic_loses_no_acknowledged_state(self):
        """Kill the child repeatedly under real traffic; replay must be exact."""
        rng = random.Random(42)
        sessions = [f"c{i}" for i in range(4)]
        acknowledged = {}
        with supervised_scheduler(workers=2, compact_threshold=5) as scheduler:
            for name in sessions:
                response = call_with_retries(
                    scheduler.handle,
                    {"cmd": "open", "session": name, "grammar": GRAMMAR},
                )
                assert "error" not in response, response
                acknowledged[name] = response["version"]
            kills = 0
            for step in range(60):
                name = rng.choice(sessions)
                if step % 9 == 4:
                    faults.arm("kill-child", times=1)
                    kills += 1
                if rng.random() < 0.5:
                    response = call_with_retries(
                        scheduler.handle,
                        {
                            "cmd": "add-rule",
                            "session": name,
                            "rule": f"B ::= w{step}",
                        },
                        retries=10,
                    )
                    if "error" not in response:
                        acknowledged[name] = response["version"]
                else:
                    call_with_retries(
                        scheduler.handle,
                        {"cmd": "parse", "session": name, "tokens": "true"},
                        retries=10,
                    )
            assert kills >= 6
            for shard in scheduler.shards:
                assert wait_for_state(shard, "ok")
            for name in sessions:
                response = call_with_retries(
                    scheduler.handle,
                    {"cmd": "metrics", "session": name},
                    retries=10,
                )
                assert response.get("version") == acknowledged[name], (
                    f"session {name}: acknowledged version "
                    f"{acknowledged[name]} but replayed shard reports "
                    f"{response}"
                )
            health = scheduler.handle({"cmd": "health"})
            assert health["healthy"] is True
            assert health["restarts"] >= kills
            # The per-session journals compacted at threshold 5 under
            # ~30 mutations — replay correctness above therefore also
            # covers snapshot compaction.
            compactions = sum(
                entry["journal"]["compactions"] for entry in health["shards"]
            )
            assert compactions >= 1


class TestCircuitBreaker:
    def test_crash_loop_degrades_the_shard(self):
        with supervised_scheduler(
            max_restarts=2, restart_window=60.0
        ) as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            )
            faults.arm("kill-child", times=None)  # every request crashes
            scheduler.handle({"cmd": "parse", "session": "s", "tokens": "true"})
            assert wait_for_state(scheduler.shards[0], "degraded")
            faults.reset()
            response = scheduler.handle(
                {"cmd": "parse", "session": "s", "tokens": "true"}
            )
            assert response["error"] == "shard-degraded"
            health = scheduler.handle({"cmd": "health"})
            assert health["healthy"] is False
            assert health["shards"][0]["state"] == "degraded"
            assert health["shards"][0]["breaker"]["tripped"] is True
            ready = scheduler.handle({"cmd": "ready"})
            assert ready["ready"] is False
            assert ready["degraded_shards"] == [0]


class TestDeadlineUnderTraffic:
    def test_deadline_exceeded_while_other_sessions_are_served(self):
        # Session names chosen to land on different shards of 2.
        with Scheduler(workers=2, mode="thread") as scheduler:
            shard_of = scheduler.shard_of
            names = [f"d{i}" for i in range(16)]
            slow = next(n for n in names if shard_of(n) == 0)
            fast = next(n for n in names if shard_of(n) == 1)
            scheduler.handle(
                {"cmd": "open", "session": slow, "grammar": AMBIGUOUS}
            )
            scheduler.handle(
                {"cmd": "open", "session": fast, "grammar": GRAMMAR}
            )
            tokens = " ".join(["x"] * 150)
            started = time.monotonic()
            response = scheduler.handle(
                {
                    "cmd": "parse",
                    "session": slow,
                    "tokens": tokens,
                    "deadline_ms": 50,
                }
            )
            elapsed_ms = (time.monotonic() - started) * 1000
            assert response["error"] == "deadline-exceeded"
            assert response["deadline_ms"] == 50
            assert response["tokens_consumed"] >= 0
            assert elapsed_ms < 500  # the acceptance bar: < 10x deadline
            quick = scheduler.handle(
                {"cmd": "parse", "session": fast, "tokens": "true or false"}
            )
            assert quick.get("accepted") is True

    def test_deadline_enforced_inside_process_children(self):
        with supervised_scheduler(deadline_ms=50) as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "amb", "grammar": AMBIGUOUS}
            )
            tokens = " ".join(["x"] * 150)
            response = scheduler.handle(
                {"cmd": "parse", "session": "amb", "tokens": tokens}
            )
            assert response["error"] == "deadline-exceeded"
            # Request-level override loosens the server default.
            response = scheduler.handle(
                {
                    "cmd": "parse",
                    "session": "amb",
                    "tokens": "x x x",
                    "deadline_ms": 60_000,
                }
            )
            assert response.get("accepted") is True


class TestChaosUnderIngest:
    """PR 8 satellite: kill a process shard mid ``corpus-parse``.

    The batch must complete after shard replay with zero duplicate
    parses (every document journaled exactly once) and zero lost
    documents — the crash shows up only as retries.
    """

    @staticmethod
    def _boolean_documents(count):
        documents = []
        for value in range(count):
            tokens = [
                "true" if (value >> bit) & 1 else "false" for bit in range(6)
            ]
            documents.append(" or ".join(tokens))
        return documents

    def test_shard_kill_mid_corpus_parse_loses_no_documents(self, tmp_path):
        documents = self._boolean_documents(64)
        with supervised_scheduler(
            corpus_root=str(tmp_path / "corpora")
        ) as scheduler:
            created = scheduler.handle(
                {"cmd": "corpus-create", "corpus": "chaos", "grammar": GRAMMAR}
            )
            assert "error" not in created, created
            ingested = scheduler.handle(
                {
                    "cmd": "corpus-ingest",
                    "corpus": "chaos",
                    "documents": documents,
                }
            )
            assert ingested["added"] == len(documents)
            started = scheduler.handle(
                {"cmd": "corpus-parse", "corpus": "chaos"}
            )
            assert "error" not in started, started
            # Let the drain get going, then kill the child under it.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = scheduler.handle(
                    {"cmd": "corpus-status", "corpus": "chaos"}
                )
                if status["parsed"] >= 5:
                    break
                time.sleep(0.01)
            assert status["parsed"] >= 5, status
            faults.arm("kill-child", times=1)

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = scheduler.handle(
                    {"cmd": "corpus-status", "corpus": "chaos"}
                )
                job = status.get("job") or {}
                if job.get("state") in ("done", "failed", "stopped"):
                    break
                time.sleep(0.05)
            assert job.get("state") == "done", status

            # Zero lost documents, zero duplicate parses.
            assert status["documents"] == len(documents)
            assert status["parsed"] == len(documents)
            assert status["pending"] == 0
            assert status["journal"]["duplicates"] == 0
            # The kill was real: the shard restarted and the job retried
            # the in-flight window instead of dropping it.
            assert job["retries"] >= 1
            health = scheduler.handle({"cmd": "health"})
            assert health["restarts"] >= 1
            # Replay correctness, query-level: every accepted document is
            # matchable from the store the crash interrupted.
            match = scheduler.handle(
                {
                    "cmd": "corpus-query",
                    "corpus": "chaos",
                    "kind": "match",
                    "nonterminal": "B",
                    "page_size": 100,
                }
            )
            assert match["total"] == len(documents)


class TestDelayAndStallFaults:
    def test_delay_fault_slows_a_batch(self):
        with Scheduler(workers=1, mode="thread") as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            )
            faults.arm("delay", times=1, delay_ms=80)
            started = time.monotonic()
            response = scheduler.handle(
                {"cmd": "parse", "session": "s", "tokens": "true"}
            )
            assert response.get("accepted") is True
            assert (time.monotonic() - started) >= 0.07

    def test_queue_stall_triggers_overloaded_backpressure(self):
        with Scheduler(
            workers=1, mode="thread", max_depth=2, max_batch=1
        ) as scheduler:
            scheduler.handle(
                {"cmd": "open", "session": "s", "grammar": GRAMMAR}
            )
            faults.arm("queue-stall", times=None, delay_ms=50)
            futures = [
                scheduler.submit(
                    {"cmd": "parse", "session": "s", "tokens": "true"}
                )
                for _ in range(12)
            ]
            responses = [future.result(timeout=30) for future in futures]
            faults.reset()
            overloaded = [
                r for r in responses if r.get("overloaded") is True
            ]
            assert overloaded, "bounded queue never pushed back"
            assert all(
                "error" not in r or r.get("overloaded") for r in responses
            )
