"""The serve loop and batch runner, including the stdio entry points."""

import io
import json
import subprocess
import sys

from repro.service import Dispatcher, serve, run_batch
from repro.bench.workloads import service_requests

OPEN = '{"cmd":"open","session":"s1","grammar":"START ::= B\\nB ::= true"}'
PARSE = '{"cmd":"parse","session":"s1","tokens":"true"}'


def serve_text(text: str):
    output = io.StringIO()
    serve(io.StringIO(text), output)
    return [json.loads(line) for line in output.getvalue().splitlines()]


class TestServeLoop:
    def test_one_response_line_per_request(self):
        responses = serve_text(OPEN + "\n" + PARSE + "\n" + PARSE + "\n")
        assert len(responses) == 3
        assert responses[0]["opened"] == "s1"
        assert responses[1]["cache"] is False
        assert responses[2]["cache"] is True
        assert all("time" in r for r in responses)

    def test_blank_and_comment_lines_are_skipped(self):
        responses = serve_text("\n# warm-up\n" + OPEN + "\n")
        assert len(responses) == 1

    def test_bad_json_yields_an_error_response_and_continues(self):
        responses = serve_text("{nope\n" + OPEN + "\n")
        assert "error" in responses[0]
        assert responses[1]["opened"] == "s1"

    def test_concatenated_requests_on_one_line(self):
        # `echo '...\n...'` under an escape-unaware shell: both objects on
        # one physical line, separated by a literal backslash-n.
        responses = serve_text(OPEN + "\\n" + PARSE + "\n")
        assert len(responses) == 2
        assert responses[1]["accepted"] is True

    def test_state_persists_across_lines(self):
        responses = serve_text(
            OPEN + "\n"
            + PARSE + "\n"
            + '{"cmd":"add-rule","session":"s1","rule":"B ::= false"}\n'
            + PARSE + "\n"
        )
        assert responses[1]["cache"] is False
        assert responses[3]["cache"] is False      # edit evicted the entry
        assert responses[3]["version"] == responses[1]["version"] + 1


class TestRunBatch:
    def test_summary_shape(self):
        responses, summary = run_batch([OPEN, PARSE, PARSE, "{broken"])
        assert summary["requests"] == 4
        assert summary["errors"] == 1
        assert summary["requests_per_second"] >= 0
        assert summary["cache"]["hits"] == 1
        assert len(responses) == 4

    def test_generated_service_traffic_runs_clean(self):
        requests = service_requests(sessions=3, requests_per_session=5, seed=1)
        dispatcher = Dispatcher()
        responses = [dispatcher.handle(r) for r in requests]
        assert not [r for r in responses if "error" in r]
        assert dispatcher.workspace.cache.stats.lookups > 0


class TestProcessEntryPoints:
    def test_python_dash_m_repro_serve(self):
        script = OPEN + "\n" + PARSE + "\n" + PARSE + "\n"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            input=script,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        responses = [json.loads(line) for line in completed.stdout.splitlines()]
        assert responses[1]["accepted"] is True
        assert [r.get("cache") for r in responses[1:]] == [False, True]

    def test_python_dash_m_repro_batch(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "batch"],
            input=OPEN + "\n" + PARSE + "\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert '"accepted":true' in completed.stdout
        summary = json.loads(completed.stderr.strip().splitlines()[-1])
        assert summary["requests"] == 2 and summary["errors"] == 0

    def test_unknown_subcommand_fails_with_usage(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "usage" in completed.stderr


class TestMalformedFieldTypes:
    def test_loop_survives_wrong_field_types(self):
        responses = serve_text(
            '{"cmd":"restore","snapshot":"not a dict"}\n'
            '{"cmd":"open","session":"a","grammar":123}\n'
            '{"cmd":"restore","session":"b","snapshot":{"format":1,'
            '"kind":"ipg-session","grammar":{"format":1,"text":""},'
            '"table":{"format":1}}}\n'
            + OPEN + "\n"
        )
        assert all("error" in r for r in responses[:3])
        assert responses[3]["opened"] == "s1"      # the loop kept serving

    def test_batch_missing_file_fails_cleanly(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "batch", "/nonexistent.ndjson"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "cannot read" in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_serve_survives_broken_pipe(self):
        class ClosedPipe(io.StringIO):
            def write(self, _text):
                raise BrokenPipeError()

        assert serve(io.StringIO(OPEN + "\n"), ClosedPipe()) == 0

    def test_help_piped_into_closed_reader_is_clean(self):
        completed = subprocess.run(
            f"{sys.executable} -m repro help | head -1",
            shell=True,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert "Traceback" not in completed.stderr
