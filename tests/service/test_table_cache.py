"""The service layers over the persistent table store.

A dispatcher handed ``table_cache`` warm-starts every session it opens
(including snapshot restores) from the shared on-disk store and reports
the accounting under ``metrics.generation`` — the cross-process warm
start the CI cache step asserts on, exercised here in-process with two
dispatchers sharing one directory.
"""

import pytest

from repro.service import Dispatcher
from repro.service.scheduler import Scheduler

BOOLEANS = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

SENTENCES = ("true", "true or false", "false or true or true")


def opened(dispatcher, session="s1"):
    response = dispatcher.handle(
        {"cmd": "open", "session": session, "grammar": BOOLEANS}
    )
    assert "error" not in response
    for sentence in SENTENCES:
        parsed = dispatcher.handle(
            {"cmd": "parse", "session": session, "tokens": sentence}
        )
        assert parsed["accepted"] is True
    return dispatcher


def generation(dispatcher):
    return dispatcher.handle({"cmd": "metrics"})["generation"]


class TestDispatcherWarmStart:
    def test_second_dispatcher_skips_generation(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = opened(Dispatcher(table_cache=cache))
        cold = generation(first)
        assert cold["saved_states"] == 0
        assert cold["cold_states"] > 0
        first.close()

        second = opened(Dispatcher(table_cache=cache))
        warm = generation(second)
        assert warm["saved_states"] > 0
        assert warm["cold_states"] == 0
        second.close()

    def test_write_back_happens_while_serving(self, tmp_path):
        """Entries land on disk as part of request handling — a crashed
        process still leaves its successor a warm store."""
        cache = tmp_path / "cache"
        dispatcher = opened(Dispatcher(table_cache=str(cache)))
        assert list((cache / "states").iterdir())
        assert list((cache / "manifests").iterdir())
        dispatcher.close()

    def test_no_cache_reports_zero_saved(self):
        dispatcher = opened(Dispatcher())
        summary = generation(dispatcher)
        assert summary["saved_states"] == 0
        assert summary["cold_states"] > 0
        dispatcher.close()

    def test_snapshot_restore_warm_starts(self, tmp_path):
        cache = str(tmp_path / "cache")
        snap_path = str(tmp_path / "session.json")
        first = opened(Dispatcher(table_cache=cache))
        saved = first.handle(
            {"cmd": "snapshot", "session": "s1", "path": snap_path}
        )
        assert "error" not in saved
        first.close()

        second = Dispatcher(table_cache=cache)
        restored = second.handle(
            {"cmd": "restore", "session": "s2", "path": snap_path}
        )
        assert restored["restored"] == "s2"
        for sentence in SENTENCES:
            parsed = second.handle(
                {"cmd": "parse", "session": "s2", "tokens": sentence}
            )
            assert parsed["accepted"] is True
        second.close()


class TestSchedulerWarmStart:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_thread_shards_share_the_store(self, tmp_path, workers):
        cache = str(tmp_path / "cache")
        with Scheduler(
            workers=workers, mode="thread", table_cache=cache
        ) as scheduler:
            opened(scheduler, session="shard-a")
            opened(scheduler, session="shard-b")
            merged = generation(scheduler)
            assert merged["cold_states"] > 0

        with Scheduler(
            workers=workers, mode="thread", table_cache=cache
        ) as scheduler:
            opened(scheduler, session="shard-a")
            opened(scheduler, session="shard-b")
            merged = generation(scheduler)
            assert merged["saved_states"] > 0
            assert merged["cold_states"] == 0
