"""Thread-safety regressions: the shared cache, the registry, the pool.

The PR 1 structures were written for one thread; under the sharded
scheduler the result cache and the session registry are touched from
every worker plus the transport thread.  These tests hammer exactly the
operations that used to race (LRU put/evict vs invalidate, registry
open/close vs names) and then check the internal invariants that a torn
update breaks.
"""

import random
import threading

from repro.bench.workloads import service_requests
from repro.service import ResultCache, Scheduler, Workspace

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)


class TestResultCacheThreadSafety:
    def test_hammer_put_get_invalidate(self):
        cache = ResultCache(capacity=64)
        sessions = [f"s{i}" for i in range(8)]
        errors = []

        def worker():
            rng = random.Random(threading.get_ident())
            try:
                for step in range(3000):
                    session = rng.choice(sessions)
                    key = (session, step % 7, "parse", (str(step % 11),), None)
                    roll = rng.random()
                    if roll < 0.5:
                        cache.put(key, {"accepted": True})
                    elif roll < 0.9:
                        cache.get(key)
                    else:
                        cache.invalidate(session)
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        run_threads([worker] * 8)
        assert not errors
        cache.check_consistency()
        assert len(cache) <= cache.capacity

    def test_eviction_under_contention_keeps_index_in_sync(self):
        cache = ResultCache(capacity=8)  # tiny: every put evicts

        def worker():
            for step in range(2000):
                cache.put((f"s{step % 3}", step, "parse", (), None), step)

        run_threads([worker] * 4)
        cache.check_consistency()
        assert len(cache) <= 8


class TestWorkspaceThreadSafety:
    def test_concurrent_open_close_names(self):
        workspace = Workspace()
        errors = []

        def worker(index):
            def body():
                try:
                    for round_number in range(20):
                        name = f"w{index}-{round_number}"
                        workspace.open(name, GRAMMAR)
                        workspace.names()
                        len(workspace)
                        workspace.action_cache_summary()
                        workspace.close(name)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return body

        run_threads([worker(i) for i in range(6)])
        assert not errors
        assert len(workspace) == 0

    def test_parse_races_registry_scans(self):
        workspace = Workspace()
        workspace.open("stable", GRAMMAR)
        stop = threading.Event()
        errors = []

        def parser():
            try:
                step = 0
                while not stop.is_set():
                    workspace.parse("stable", f"true or {'false or ' * (step % 3)}true")
                    step += 1
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def scanner():
            try:
                while not stop.is_set():
                    workspace.names()
                    workspace.action_cache_summary()
                    len(workspace.cache)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=parser),
                   threading.Thread(target=scanner)]
        for thread in threads:
            thread.start()
        threads[0].join(timeout=2)  # let them race for a bounded while
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        workspace.cache.check_consistency()


class TestSchedulerHammer:
    """The generated multi-session workload under real concurrency."""

    def test_interleaved_traffic_with_global_scans(self):
        requests = service_requests(sessions=8, requests_per_session=6, seed=3)
        per_session = {}
        for request in requests:
            per_session.setdefault(request.get("session"), []).append(request)
        globals_only = per_session.pop(None, [])
        errors = []

        with Scheduler(workers=4, max_depth=1024) as scheduler:
            def client(chunk):
                def body():
                    for request in chunk:
                        response = scheduler.handle(request)
                        if "error" in response:
                            errors.append(response)

                return body

            def scanner():
                for _ in range(30):
                    for request in ({"cmd": "sessions"}, {"cmd": "metrics"}):
                        response = scheduler.handle(request)
                        if "error" in response:
                            errors.append(response)

            run_threads(
                [client(chunk) for chunk in per_session.values()] + [scanner]
            )
            for request in globals_only:
                response = scheduler.handle(request)
                assert "error" not in response
            metrics = scheduler.handle({"cmd": "metrics"})
            assert metrics["sessions"] == 8
            completed = sum(
                shard["completed"]
                for shard in metrics["scheduler"]["shards"]
            )
            assert completed >= len(requests)
            scheduler.workspace.cache.check_consistency()
        assert not errors
