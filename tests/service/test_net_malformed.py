"""Malformed network input: structured errors or clean closes — never a
dead asyncio task.

Every test asserts two things: the client observes either a structured
``{"error": ...}`` response or a clean connection close, and the server's
event loop recorded **zero unhandled exceptions** (``BackgroundServer``
captures them via the loop exception handler) while remaining able to
serve a well-formed request afterwards.
"""

import json
import socket

import pytest

from repro.service import BackgroundServer, Scheduler, faults

GRAMMAR = "START ::= B\nB ::= true\nB ::= false"
OPEN = {"cmd": "open", "session": "ok", "grammar": GRAMMAR}


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture()
def server():
    # A small line limit keeps the oversized-line test from shipping
    # 16 MB through the loopback.
    with BackgroundServer(Scheduler(), max_line_bytes=64 * 1024) as running:
        yield running


def connect(server):
    sock = socket.create_connection((server.host, server.port), timeout=30)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def assert_still_serving(server):
    """The real postcondition: no task died, the server still answers."""
    assert server.loop_errors == []
    sock, stream = connect(server)
    try:
        stream.write(json.dumps({**OPEN, "force": True}) + "\n")
        stream.flush()
        assert json.loads(stream.readline())["opened"] == "ok"
    finally:
        sock.close()


class TestMalformedInput:
    def test_oversized_line_answers_error_then_closes(self, server):
        sock, stream = connect(server)
        try:
            stream.write('{"cmd":"parse","tokens":"' + "x" * (80 * 1024))
            stream.write('"}\n')
            stream.flush()
            # The server answers a structured error and stops reading;
            # because our oversized line may still sit unread in its
            # socket buffer, the close can surface as a reset before the
            # error line is delivered.  Both are clean outcomes — what
            # is *not* allowed is a hang or a dead server task.
            try:
                line = stream.readline()
            except ConnectionError:
                line = ""
            if line:
                assert "exceeds" in json.loads(line)["error"]
        finally:
            sock.close()
        assert_still_serving(server)

    def test_invalid_json_answers_structured_error(self, server):
        sock, stream = connect(server)
        try:
            stream.write("{definitely not json\n")
            stream.flush()
            assert "error" in json.loads(stream.readline())
            # The connection survives malformed JSON (framing intact).
            stream.write(json.dumps(OPEN) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["opened"] == "ok"
        finally:
            sock.close()
        assert_still_serving(server)

    def test_binary_garbage(self, server):
        sock, _stream = connect(server)
        try:
            sock.sendall(bytes(range(256)) + b"\n")
            sock.shutdown(socket.SHUT_WR)
            reply = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                reply += chunk
            # Every answered line must be a structured error, and the
            # server must close cleanly afterwards.
            for line in filter(None, reply.split(b"\n")):
                assert b'"error"' in line
        finally:
            sock.close()
        assert_still_serving(server)

    def test_mid_frame_disconnect(self, server):
        sock, stream = connect(server)
        stream.write('{"cmd":"parse","session":"ok","tok')  # no newline
        stream.flush()
        sock.close()  # vanish mid-frame
        assert_still_serving(server)

    def test_disconnect_with_pipelined_requests_in_flight(self, server):
        sock, stream = connect(server)
        stream.write(json.dumps(OPEN) + "\n")
        for _ in range(20):
            stream.write(
                json.dumps(
                    {"cmd": "parse", "session": "ok", "tokens": "true"}
                )
                + "\n"
            )
        stream.flush()
        sock.close()  # leave before reading any response
        assert_still_serving(server)

    def test_empty_connection(self, server):
        sock, _stream = connect(server)
        sock.close()
        assert_still_serving(server)


class TestInjectedTransportFaults:
    def test_drop_connection_fault_aborts_cleanly(self, server):
        faults.arm("drop-connection", times=1)
        sock, stream = connect(server)
        try:
            stream.write(json.dumps(OPEN) + "\n")
            stream.flush()
            # The server aborts the transport after decoding: we see EOF
            # or a reset, never a hang.
            try:
                assert stream.readline() == ""
            except ConnectionError:
                pass
        finally:
            sock.close()
        assert_still_serving(server)

    def test_corrupt_frame_fault_keeps_server_healthy(self, server):
        faults.arm("corrupt-frame", times=1)
        sock, stream = connect(server)
        try:
            stream.write(json.dumps(OPEN) + "\n")
            stream.write(
                json.dumps(
                    {"cmd": "parse", "session": "ok", "tokens": "true"}
                )
                + "\n"
            )
            stream.flush()
            sock.shutdown(socket.SHUT_WR)
            payload = stream.read()
            # The first frame was truncated mid-JSON; the client's view
            # is garbage but the server's loop never crashed.
            lines = payload.split("\n")
            with pytest.raises(json.JSONDecodeError):
                json.loads(lines[0])
        finally:
            sock.close()
        assert_still_serving(server)


class TestStartupFailure:
    def test_start_raises_when_thread_never_signals_ready(self):
        background = BackgroundServer(Scheduler())
        # Replace the server thread with one that never reports ready —
        # the shape of a wedged bind.  start() must raise, not hand back
        # a server object with no address.
        import threading

        background._thread = threading.Thread(target=lambda: None, daemon=True)
        with pytest.raises(RuntimeError, match="failed to start listening"):
            background.start(timeout=0.2)
        background.scheduler.close()

    def test_start_surfaces_bind_errors(self):
        import socket as socket_module

        blocker = socket_module.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            background = BackgroundServer(Scheduler())
            background.server.port = port  # force a bind conflict
            with pytest.raises(RuntimeError, match="failed to start"):
                background.start()
            background.scheduler.close()
        finally:
            blocker.close()
