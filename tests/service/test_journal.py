"""The mutation journal: recording rules, compaction, replay ordering."""

import pytest

from repro.service.journal import MutationJournal


def ok(cmd, session, **extra):
    request = {"cmd": cmd, "session": session, **extra}
    return request, {"cmd": cmd, "session": session, "time": 0.0}


class TestRecordingRules:
    def test_acknowledged_mutations_are_recorded(self):
        journal = MutationJournal()
        assert journal.record(*ok("open", "a", grammar="START ::= x"))
        assert journal.record(*ok("add-rule", "a", rule="X ::= y"))
        assert journal.entry_count() == 2
        assert journal.session_count() == 1

    def test_error_responses_are_never_recorded(self):
        journal = MutationJournal()
        request = {"cmd": "add-rule", "session": "a", "rule": "X ::= y"}
        assert not journal.record(request, {"error": "no such session"})
        assert journal.entry_count() == 0

    def test_reads_are_not_recorded(self):
        journal = MutationJournal()
        assert not journal.record(*ok("parse", "a", tokens="x"))
        assert not journal.record(*ok("recognize", "a", tokens="x"))
        assert not journal.record(*ok("snapshot", "a"))
        assert journal.entry_count() == 0

    def test_close_drops_the_sessions_history(self):
        journal = MutationJournal()
        journal.record(*ok("open", "a"))
        journal.record(*ok("add-rule", "a", rule="X ::= y"))
        journal.record(*ok("open", "b"))
        journal.record(*ok("close", "a"))
        assert journal.entry_count() == 1
        assert [r["session"] for r in journal.replay_requests()] == ["b"]

    def test_reopen_resets_the_run(self):
        journal = MutationJournal()
        journal.record(*ok("open", "a"))
        journal.record(*ok("add-rule", "a", rule="X ::= y"))
        journal.record(*ok("open", "a", force=True))
        replay = journal.replay_requests()
        assert len(replay) == 1
        assert replay[0]["cmd"] == "open"

    def test_restore_names_session_via_snapshot_payload(self):
        journal = MutationJournal()
        request = {
            "cmd": "restore",
            "snapshot": {"session": "from-payload", "grammar": {}},
        }
        assert journal.record(request, {"restored": "from-payload"})
        assert journal.session_count() == 1

    def test_transport_fields_are_stripped(self):
        journal = MutationJournal()
        journal.record(
            {
                "cmd": "add-rule",
                "session": "a",
                "rule": "X ::= y",
                "trace": True,
                "deadline_ms": 50,
            },
            {"added": True},
        )
        [entry] = journal.replay_requests()
        assert "trace" not in entry
        assert "deadline_ms" not in entry

    def test_malformed_inputs_are_ignored(self):
        journal = MutationJournal()
        assert not journal.record("nope", {"ok": True})
        assert not journal.record({"cmd": "open"}, {"ok": True})
        assert not journal.record({"cmd": "open", "session": 7}, {})


class TestReplayOrdering:
    def test_global_arrival_order_is_preserved(self):
        journal = MutationJournal()
        journal.record(*ok("open", "a"))
        journal.record(*ok("open", "b"))
        journal.record(*ok("add-rule", "a", rule="X ::= y"))
        journal.record(*ok("delete-rule", "b", rule="Z ::= w"))
        cmds = [(r["session"], r["cmd"]) for r in journal.replay_requests()]
        assert cmds == [
            ("a", "open"),
            ("b", "open"),
            ("a", "add-rule"),
            ("b", "delete-rule"),
        ]

    def test_replay_returns_copies(self):
        journal = MutationJournal()
        journal.record(*ok("open", "a"))
        first = journal.replay_requests()[0]
        first["mutated"] = True
        assert "mutated" not in journal.replay_requests()[0]


class TestCompaction:
    def test_threshold_flags_a_long_run(self):
        journal = MutationJournal(compact_threshold=3)
        journal.record(*ok("open", "a"))
        journal.record(*ok("add-rule", "a", rule="X ::= y"))
        assert journal.needs_compaction() is None
        journal.record(*ok("add-rule", "a", rule="X ::= z"))
        assert journal.needs_compaction() == "a"

    def test_compact_collapses_to_one_forced_restore(self):
        journal = MutationJournal(compact_threshold=3)
        for request, response in [
            ok("open", "a"),
            ok("add-rule", "a", rule="X ::= y"),
            ok("add-rule", "a", rule="X ::= z"),
            ok("open", "b"),
        ]:
            journal.record(request, response)
        journal.compact("a", {"session": "a", "version": 3})
        replay = journal.replay_requests()
        assert len(replay) == 2
        restore = [r for r in replay if r["cmd"] == "restore"][0]
        assert restore["force"] is True
        assert restore["snapshot"]["version"] == 3
        assert journal.needs_compaction() is None
        assert journal.compactions == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MutationJournal(compact_threshold=1)
