"""LALR lookahead machinery: spontaneous generation and propagation."""

import pytest

from repro.grammar.builders import grammar_from_text
from repro.grammar.symbols import END, Terminal
from repro.lr.graph import ItemSetGraph
from repro.lr.items import Item
from repro.lr.lalr import compute_lalr_lookaheads

#: ASU's running example for lookahead propagation (grammar 4.20):
#: S ::= L = R | R ;  L ::= * R | id ;  R ::= L
PROPAGATION = """
    S ::= L = R
    S ::= R
    L ::= * R
    L ::= id
    R ::= L
    START ::= S
"""


@pytest.fixture()
def graph():
    graph = ItemSetGraph(grammar_from_text(PROPAGATION))
    graph.expand_all()
    return graph


def lookaheads_for(graph, lookaheads, lhs_name, rhs_texts, dot):
    """Collect the lookahead set of a kernel item found by its shape."""
    for state in graph.states():
        for item in state.kernel_items():
            if (
                item.rule.lhs.name == lhs_name
                and [s.name for s in item.rule.rhs] == rhs_texts
                and item.dot == dot
            ):
                return lookaheads.get((state.uid, item), frozenset())
    raise AssertionError("kernel item not found")


class TestLookaheads:
    def test_start_item_sees_end_marker(self, graph):
        lookaheads = compute_lalr_lookaheads(graph)
        start_item = next(iter(graph.start.kernel_items()))
        assert END in lookaheads[(graph.start.uid, start_item)]

    def test_spontaneous_lookahead(self, graph):
        lookaheads = compute_lalr_lookaheads(graph)
        # L ::= * . R gets '=' spontaneously (from S ::= . L = R context)
        las = lookaheads_for(graph, lookaheads, "L", ["*", "R"], 1)
        assert Terminal("=") in las

    def test_propagated_end_marker(self, graph):
        lookaheads = compute_lalr_lookaheads(graph)
        # ...and $ by propagation (from S ::= . R, R ::= . L contexts)
        las = lookaheads_for(graph, lookaheads, "L", ["*", "R"], 1)
        assert END in las

    def test_reduce_lookaheads_are_subset_of_follow(self):
        from repro.grammar.analysis import GrammarAnalysis
        from repro.lr.lalr import lalr_table_from_graph

        grammar = grammar_from_text(PROPAGATION)
        graph = ItemSetGraph(grammar)
        graph.expand_all()
        table = lalr_table_from_graph(graph)
        analysis = GrammarAnalysis(grammar)
        for index in range(len(table)):
            row = table._rows[index]
            for rule, las in row.reduces:
                assert las is not None
                assert las <= analysis.follow(rule.lhs), (
                    f"LALR lookaheads must refine SLR's FOLLOW for {rule}"
                )

    def test_lalr_strictly_sharper_than_slr_somewhere(self):
        """On the propagation grammar, some LALR reduce set is a *proper*
        subset of FOLLOW — that is the whole point of LALR over SLR."""
        from repro.grammar.analysis import GrammarAnalysis
        from repro.lr.lalr import lalr_table

        grammar = grammar_from_text(PROPAGATION)
        table = lalr_table(grammar)
        analysis = GrammarAnalysis(grammar)
        strictly_smaller = False
        for index in range(len(table)):
            for rule, las in table._rows[index].reduces:
                if las < analysis.follow(rule.lhs):
                    strictly_smaller = True
        assert strictly_smaller
