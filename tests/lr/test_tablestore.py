"""The persistent table store: round-trips, hostile disks, racing writers.

The store is a cache keyed on content hashes, so the contract under test
is twofold: a warm start must reproduce *exactly* the control plane a
cold start would build (graphs, dense tables, compiled step cells), and
nothing read from disk may ever be trusted — corrupt, truncated,
version-mismatched, and stale entries must be ignored (and, where they
can never be addressed again, repaired by the next write-back).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.api.language import Language
from repro.core.incremental import IncrementalGenerator
from repro.grammar.builders import grammar_from_text
from repro.grammar.symbols import END, Terminal
from repro.lr.generator import ConventionalGenerator
from repro.lr.graph import ItemSetGraph
from repro.lr.serialize import dumps
from repro.lr.table import lr0_table
from repro.lr.tablestore import (
    STORE_FORMAT_VERSION,
    TableStore,
    compute_grammar_key,
)

BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""

#: A grammar embedding the booleans ``B`` subgrammar under an extra layer
#: — shares every ``B``-internal state key with BOOLEANS.
WRAPPED_BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    W ::= begin B end
    START ::= W
"""


def full_graph(text: str) -> ItemSetGraph:
    generator = ConventionalGenerator(grammar_from_text(text))
    generator.generate()
    return generator.graph


def graph_shape(graph: ItemSetGraph) -> str:
    return dumps(lr0_table(graph))


@pytest.fixture
def store(tmp_path) -> TableStore:
    return TableStore(str(tmp_path / "cache"))


class TestGraphRoundTrip:
    def test_restore_rebuilds_the_exact_graph(self, store):
        cold = full_graph(BOOLEANS)
        written = store.save_graph(cold)
        assert written == len(cold.states())

        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        restored = store.restore_graph(warm)
        assert restored == written
        assert warm.stats.states_restored == written
        assert warm.stats.expansions == 0
        assert graph_shape(warm) == graph_shape(cold)
        warm.validate()

    def test_second_save_writes_nothing(self, store):
        graph = full_graph(BOOLEANS)
        assert store.save_graph(graph) > 0
        assert store.save_graph(graph) == 0

    def test_refcounts_match_a_cold_expansion(self, store):
        cold = full_graph(BOOLEANS)
        store.save_graph(cold)
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        store.restore_graph(warm)
        by_kernel = {state.kernel: state for state in cold.states()}
        for state in warm.states():
            assert state.refcount == by_kernel[state.kernel].refcount

    def test_partial_graph_roundtrip(self, store):
        """Lazy sessions persist only what they materialized."""
        generator = IncrementalGenerator(grammar_from_text(BOOLEANS))
        generator.control.action(generator.graph.start, Terminal("true"))
        complete = [s for s in generator.graph.states() if s.is_complete]
        assert 0 < len(complete) < len(full_graph(BOOLEANS).states())
        written = store.save_graph(generator.graph)
        assert written == len(complete)

        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == written

    def test_manifest_only_grows(self, store):
        """A sparse session must not shrink a fuller session's manifest."""
        full = full_graph(BOOLEANS)
        store.save_graph(full)
        sparse = IncrementalGenerator(grammar_from_text(BOOLEANS))
        sparse.control.action(sparse.graph.start, Terminal("true"))
        store.save_graph(sparse.graph)

        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == len(full.states())


class TestTableRoundTrip:
    def test_sparse_table_is_byte_identical(self, store):
        grammar = grammar_from_text(BOOLEANS)
        table = lr0_table(full_graph(BOOLEANS))
        store.save_table(grammar, table)
        loaded = store.load_table(grammar)
        assert dumps(loaded) == dumps(table)

    def test_dense_rendering_is_cell_identical(self, store):
        grammar = grammar_from_text(BOOLEANS)
        table = lr0_table(full_graph(BOOLEANS))
        store.save_table(grammar, table)
        loaded = store.load_table(grammar)
        # The persisted dense section rehydrates without a rebuild...
        assert loaded._dense is not None
        cold, warm = table.dense(), loaded._dense
        # ...and matches a cold build on every cell, including the
        # unknown-terminal default column and the pre-decoded step cells.
        assert len(cold) == len(warm)
        assert cold.start_state == warm.start_state
        assert cold.pool_size() == warm.pool_size()
        columns = list(table.terminals) + [END, Terminal("zz_unknown")]
        for state in range(len(cold)):
            for terminal in columns:
                assert cold.action(state, terminal) == warm.action(
                    state, terminal
                )
        assert set(cold.step_cache) == set(warm.step_cache)
        for state, cells in cold.step_cache.items():
            assert cells == warm.step_cache[state]

    def test_compiled_step_cells_identical_after_reload(self, tmp_path):
        store = TableStore(str(tmp_path))
        sentence = "true and false or true"
        cold = Language.from_text(BOOLEANS)
        assert cold.parse(sentence).accepted

        seeder = Language.from_text(BOOLEANS, table_store=store)
        assert seeder.parse(sentence).accepted
        seeder.persist_tables()

        warm = Language.from_text(BOOLEANS, table_store=store)
        assert warm.saved_states > 0
        assert warm.parse(sentence).accepted

        def shape(value):
            """Steps reference ItemSets, which are per-graph objects —
            collapse them to their kernels for cross-language equality."""
            if isinstance(value, tuple):
                return tuple(shape(part) for part in value)
            kernel = getattr(value, "kernel", None)
            if kernel is not None:
                return frozenset(str(item) for item in kernel)
            return value

        cold_cells = {
            frozenset(str(i) for i in state.kernel): cells
            for state, cells in cold.control.fast_step_cache.items()
        }
        assert warm.control.fast_step_cache
        for state, cells in warm.control.fast_step_cache.items():
            key = frozenset(str(i) for i in state.kernel)
            assert set(cells) == set(cold_cells[key])
            for terminal, step in cells.items():
                assert shape(step) == shape(cold_cells[key][terminal])


class TestHostileDisk:
    def seed(self, store):
        store.save_graph(full_graph(BOOLEANS))
        return sorted(
            os.path.join(store._states_dir, name)
            for name in os.listdir(store._states_dir)
        )

    def test_truncated_entry_is_skipped_and_unlinked(self, store):
        paths = self.seed(store)
        with open(paths[0], "r+") as handle:
            handle.truncate(handle.seek(0, os.SEEK_END) // 2)
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == len(paths) - 1
        assert not os.path.exists(paths[0])

    def test_unlinked_corruption_is_repaired_by_the_next_save(self, store):
        paths = self.seed(store)
        with open(paths[0], "w") as handle:
            handle.write("}{ not json")
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        store.restore_graph(warm)
        assert store.save_graph(full_graph(BOOLEANS)) == 1
        again = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(again) == len(paths)

    def test_version_mismatch_is_discarded(self, store):
        paths = self.seed(store)
        payload = json.load(open(paths[0]))
        payload["format"] = STORE_FORMAT_VERSION + 1
        with open(paths[0], "w") as handle:
            json.dump(payload, handle)
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == len(paths) - 1
        assert not os.path.exists(paths[0])

    def test_garbage_payload_shape_is_survived(self, store):
        paths = self.seed(store)
        with open(paths[0], "w") as handle:
            json.dump(
                {"format": STORE_FORMAT_VERSION, "kernel": 17}, handle
            )
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == len(paths) - 1

    def test_corrupt_manifest_recovers(self, store):
        self.seed(store)
        manifest = os.path.join(
            store._manifests_dir, os.listdir(store._manifests_dir)[0]
        )
        with open(manifest, "w") as handle:
            handle.write("not json at all")
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == 0
        # The write-back path rebuilds the manifest from scratch.
        store.save_graph(full_graph(BOOLEANS))
        again = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(again) > 0

    def test_corrupt_dense_section_falls_back_to_sparse(self, store):
        grammar = grammar_from_text(BOOLEANS)
        table = lr0_table(full_graph(BOOLEANS))
        store.save_table(grammar, table)
        path = store._table_path(store.grammar_key(grammar))
        payload = json.load(open(path))
        payload["dense"]["pool"] = [[["bogus-tag"]]]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        loaded = store.load_table(grammar)
        assert loaded is not None
        assert loaded._dense is None
        assert dumps(loaded) == dumps(table)

    def test_corrupt_table_is_discarded(self, store):
        grammar = grammar_from_text(BOOLEANS)
        store.save_table(grammar, lr0_table(full_graph(BOOLEANS)))
        path = store._table_path(store.grammar_key(grammar))
        with open(path, "w") as handle:
            handle.write("{")
        assert store.load_table(grammar) is None
        assert not os.path.exists(path)


class TestInvalidation:
    def test_edit_changes_the_keys_not_the_files(self, store):
        """Stale entries are skipped, never deleted: they still serve the
        grammar they were written for."""
        store.save_graph(full_graph(BOOLEANS))
        files_before = set(os.listdir(store._states_dir))

        edited = grammar_from_text(BOOLEANS + "    B ::= maybe\n")
        warm = ItemSetGraph(edited)
        # The edit moved the grammar key (fresh manifest) and every state
        # key (every closure reaches B): nothing restores, and nothing is
        # unlinked either.
        assert store.restore_graph(warm) == 0
        assert set(os.listdir(store._states_dir)) == files_before

        # The original grammar still warm-starts in full.
        original = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(original) == len(files_before)

    def test_rekey_mismatch_skips_without_unlinking(self, store):
        """An entry whose content no longer hashes to its address (here:
        planted under a forged key) is ignored but never deleted — it may
        still be the valid entry for some other grammar."""
        store.save_graph(full_graph(BOOLEANS))
        genuine = sorted(os.listdir(store._states_dir))
        forged_key = "ab" * 32
        donor = os.path.join(store._states_dir, genuine[0])
        forged = os.path.join(store._states_dir, f"{forged_key}.json")
        with open(donor) as src, open(forged, "w") as dst:
            dst.write(src.read())
        manifest = os.path.join(
            store._manifests_dir, os.listdir(store._manifests_dir)[0]
        )
        listing = json.load(open(manifest))
        listing["states"].append(forged_key)
        with open(manifest, "w") as handle:
            json.dump(listing, handle)

        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        assert store.restore_graph(warm) == len(genuine)
        assert os.path.exists(forged)

    def test_shared_subgrammar_dedupes_across_grammars(self, store):
        """State entries are content-addressed, not per-grammar: a second
        grammar embedding the same B subgrammar reuses the B-internal
        entries on disk instead of writing its own copies."""
        store.save_graph(full_graph(BOOLEANS))
        wrapped = full_graph(WRAPPED_BOOLEANS)
        written = store.save_graph(wrapped)
        shared = len(wrapped.states()) - written
        assert 0 < written < len(wrapped.states())
        assert shared > 0

        # Both grammars still restore in full from the shared pool.
        for text, cold in ((BOOLEANS, None), (WRAPPED_BOOLEANS, wrapped)):
            warm = ItemSetGraph(grammar_from_text(text))
            reference = cold if cold is not None else full_graph(text)
            assert store.restore_graph(warm) == len(reference.states())
            assert graph_shape(warm) == graph_shape(reference)
            warm.validate()

    def test_grammar_key_tracks_revisions(self, store):
        grammar = grammar_from_text(BOOLEANS)
        before = store.grammar_key(grammar)
        assert before == compute_grammar_key(grammar)
        language = Language(grammar)
        language.add_rule("B ::= maybe")
        after = store.grammar_key(grammar)
        assert after != before
        assert after == compute_grammar_key(grammar)


class TestConcurrentWriters:
    def test_two_processes_race_safely(self, tmp_path):
        """Both writers persist the same grammar at once; the store must
        end up complete and readable (atomic renames, skip-if-exists)."""
        root = str(tmp_path / "cache")
        template = textwrap.dedent(
            """
            import sys
            from repro.grammar.builders import grammar_from_text
            from repro.lr.generator import ConventionalGenerator
            from repro.lr.tablestore import TableStore

            TEXT = '''%s'''
            generator = ConventionalGenerator(grammar_from_text(TEXT))
            generator.generate()
            TableStore(sys.argv[1]).save_graph(generator.graph)
            """
        )
        script = template % BOOLEANS
        env = dict(os.environ, PYTHONPATH="src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, root],
                env=env,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            )
            for _ in range(2)
        ]
        assert [worker.wait() for worker in workers] == [0, 0]

        store = TableStore(root)
        warm = ItemSetGraph(grammar_from_text(BOOLEANS))
        cold = full_graph(BOOLEANS)
        assert store.restore_graph(warm) == len(cold.states())
        assert graph_shape(warm) == graph_shape(cold)
