"""The compiled control plane: memoization, invalidation, dense tables."""

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.core.ipg import IPG
from repro.grammar.builders import grammar_from_text
from repro.lr.compiled import (
    STEP_ACCEPT,
    STEP_REDUCE,
    STEP_SHIFT,
    CompiledControl,
    encode_step,
)
from repro.lr.graph import ItemSetGraph
from repro.lr.slr import slr_table
from repro.lr.table import DenseTable, TableControl, lr0_table
from repro.grammar.symbols import END, NonTerminal, Terminal
from repro.runtime.parallel import PoolParser

BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""


def booleans():
    return grammar_from_text(BOOLEANS)


def compiled_setup(grammar):
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    return generator, control


def toks(text):
    return [Terminal(part) for part in text.split()]


class TestMemoization:
    def test_repeated_action_returns_shared_tuple(self):
        grammar = booleans()
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        assert parser.recognize(toks("true and false"))
        state = control.start_state
        first = control.action(state, Terminal("true"))
        second = control.action(state, Terminal("true"))
        assert first is second  # the memo hands back the same tuple object

    def test_hits_and_misses_counted(self):
        grammar = booleans()
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        parser.recognize(toks("true and false"))
        cold = control.stats.snapshot()
        assert cold["action_cache_misses"] > 0
        parser.recognize(toks("true and false"))
        warm = control.stats.snapshot()
        assert warm["action_cache_misses"] == cold["action_cache_misses"]
        assert warm["action_cache_hits"] > cold["action_cache_hits"]

    def test_results_equal_inner_control(self):
        grammar = booleans()
        generator, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        parser.recognize(toks("true or true and false"))
        for state in generator.graph.states():
            if not state.is_complete:
                continue
            for name in ("true", "false", "and", "or"):
                symbol = Terminal(name)
                assert control.action(state, symbol) == generator.control.action(
                    state, symbol
                )

    def test_step_cache_mirrors_actions(self):
        grammar = booleans()
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        parser.recognize(toks("true and false"))
        assert control.fast_step_cache  # populated during the parse
        for state, steps in control.fast_step_cache.items():
            for symbol, step in steps.items():
                assert step == encode_step(control.action(state, symbol))


class TestInvalidation:
    def test_add_rule_is_visible_through_the_cache(self):
        grammar = booleans()
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        assert not parser.recognize(toks("true or unknown"))
        grammar.add_rule(IPG(booleans()).coerce_rule("B ::= unknown"))
        assert parser.recognize(toks("true or unknown"))

    def test_delete_rule_is_visible_through_the_cache(self):
        grammar = booleans()
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        assert parser.recognize(toks("true and false"))
        [and_rule] = [r for r in grammar.rules if Terminal("and") in r.rhs]
        grammar.delete_rule(and_rule)
        assert not parser.recognize(toks("true and false"))
        assert parser.recognize(toks("true or false"))

    def test_flush_is_precise(self):
        # An edit only evicts the states MODIFY un-expanded, not the
        # whole cache.
        grammar = grammar_from_text(
            """
            A ::= x
            C ::= z
            START ::= A C
            """
        )
        _, control = compiled_setup(grammar)
        parser = PoolParser(control, grammar)
        assert parser.recognize(toks("x z"))
        cached_before = control.cached_states()
        assert cached_before > 0
        grammar.add_rule(
            IPG(grammar.copy()).coerce_rule("C ::= zz")
        )
        evicted = control.stats.action_cache_evicted
        assert 0 < evicted < cached_before
        assert parser.recognize(toks("x zz"))

    def test_summary_reports_cache_counters(self):
        ipg = IPG.from_text(BOOLEANS)
        ipg.parse("true and true")
        summary = ipg.summary()
        assert "action_cache_hits" in summary
        assert "action_cache_misses" in summary
        assert summary["action_cache_misses"] > 0


class TestEncodeStep:
    def test_multi_action_cells_encode_false(self):
        grammar = booleans()
        graph = ItemSetGraph(grammar)
        graph.expand_all()
        table = lr0_table(graph)
        control = TableControl(table)
        conflicted = [
            (state, terminal)
            for state in range(len(table))
            for terminal in table.terminals
            if len(table.action(state, terminal)) > 1
        ]
        assert conflicted  # LR(0) booleans has shift/reduce conflicts
        state, terminal = conflicted[0]
        assert control.fast_step_cache[state][terminal] is False

    def test_kinds(self):
        grammar = booleans()
        table = lr0_table_of(grammar)
        kinds = {
            step[0]
            for steps in TableControl(table).fast_step_cache.values()
            for step in steps.values()
            if step is not False
        }
        assert kinds == {STEP_SHIFT, STEP_REDUCE, STEP_ACCEPT}


def lr0_table_of(grammar):
    graph = ItemSetGraph(grammar)
    graph.expand_all()
    return lr0_table(graph)


class TestDenseTable:
    def grammar(self):
        return grammar_from_text(
            """
            E ::= E + T
            E ::= T
            T ::= n
            START ::= E
            """
        )

    def test_dense_action_matches_sparse(self):
        table = slr_table(self.grammar())
        dense = table.dense()
        columns = list(table.terminals) + [END]
        for state in range(len(table)):
            for terminal in columns:
                assert dense.action(state, terminal) == table.action(state, terminal)

    def test_unknown_terminal_matches_sparse(self):
        table = lr0_table_of(self.grammar())
        dense = table.dense()
        stranger = Terminal("stranger")
        for state in range(len(table)):
            assert dense.action(state, stranger) == table.action(state, stranger)

    def test_dense_goto_matches_sparse(self):
        table = slr_table(self.grammar())
        dense = table.dense()
        for state in range(len(table)):
            for nonterminal in table.nonterminals:
                try:
                    expected = table.goto(state, nonterminal)
                except LookupError:
                    with pytest.raises(LookupError):
                        dense.goto(state, nonterminal)
                else:
                    assert dense.goto(state, nonterminal) == expected

    def test_goto_unknown_nonterminal_raises(self):
        dense = slr_table(self.grammar()).dense()
        with pytest.raises(LookupError):
            dense.goto(0, NonTerminal("GHOST"))

    def test_dense_form_is_cached_on_the_table(self):
        table = slr_table(self.grammar())
        assert table.dense() is table.dense()
        assert isinstance(table.dense(), DenseTable)

    def test_action_tuples_are_shared_across_calls(self):
        table = slr_table(self.grammar())
        control = TableControl(table)
        a = control.action(table.start, Terminal("n"))
        b = control.action(table.start, Terminal("n"))
        assert a is b

    def test_default_only_pool_entries_keep_step_pool_in_sync(self):
        # Regression: a state whose lookahead-less reduce + full shift row
        # makes its *defaults* tuple a brand-new pool entry used to desync
        # the parallel step pool and crash construction with IndexError.
        grammar = grammar_from_text(
            """
            START ::= S
            S ::= Z
            S ::= a
            Z ::= S
            Z ::= S a
            """
        )
        table = lr0_table_of(grammar)
        control = TableControl(table)  # must not raise
        for state, steps in control.fast_step_cache.items():
            for symbol, step in steps.items():
                assert step == encode_step(control.action(state, symbol))

    def test_state_objects_are_interned(self):
        # Duplicate elision keys on state identity, so every occurrence of
        # a state number must be the same int object.
        table = slr_table(self.grammar())
        dense = table.dense()
        for state in range(len(table)):
            for terminal in list(table.terminals) + [END]:
                for action in dense.action(state, terminal):
                    if hasattr(action, "target"):
                        assert action.target is dense._state_objects[action.target]


class TestConflictCaching:
    def test_conflicts_computed_once(self):
        table = lr0_table_of(booleans())
        first = table.conflicts()
        assert first  # LR(0) booleans is conflicted
        assert table.conflicts() is first  # cached tuple, not a re-scan

    def test_is_deterministic_uses_the_cache(self):
        table = slr_table(
            grammar_from_text(
                """
                A ::= x
                START ::= A
                """
            )
        )
        assert table.is_deterministic
        assert table.conflicts() is table.conflicts()
