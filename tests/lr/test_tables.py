"""Tabular parse tables: LR(0), SLR(1), LALR(1), conflict resolution."""

import pytest

from repro.grammar.builders import grammar_from_text
from repro.grammar.symbols import NonTerminal, Terminal
from repro.lr.generator import ConventionalGenerator
from repro.lr.lalr import lalr_table
from repro.lr.slr import slr_table
from repro.lr.table import TableControl, lr0_table, resolve_conflicts
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.errors import AmbiguousInputError, ParseError

from ..conftest import toks

#: LR(0)-conflicting but SLR(1)-clean grammar (ASU's expression grammar:
#: the state {E ::= T •, T ::= T • * F} has a shift/reduce on '*').
SLR_GRAMMAR = """
    E ::= E + T
    E ::= T
    T ::= T * F
    T ::= F
    F ::= n
    F ::= ( E )
    START ::= E
"""

#: SLR-conflicting but LALR(1)-clean (the classic example: ASU 4.7).
LALR_GRAMMAR = """
    S ::= L = R
    S ::= R
    L ::= * R
    L ::= id
    R ::= L
    START ::= S
"""

#: LALR(1)-conflicting (needs full LR(1)): classic reduce/reduce merge.
NON_LALR_GRAMMAR = """
    S ::= a A d
    S ::= b B d
    S ::= a B e
    S ::= b A e
    A ::= c
    B ::= c
    START ::= S
"""


def _graph(text):
    generator = ConventionalGenerator(grammar_from_text(text))
    generator.generate()
    return generator.graph


class TestLR0Table:
    def test_lr0_has_conflicts_on_slr_grammar(self):
        table = lr0_table(_graph(SLR_GRAMMAR))
        assert not table.is_deterministic

    def test_action_returns_all_actions(self, booleans):
        generator = ConventionalGenerator(booleans)
        generator.generate()
        table = lr0_table(generator.graph)
        # state 6/7 conflict cells return two actions
        conflict = table.conflicts()[0]
        assert len(table.action(conflict.state, conflict.terminal)) == 2

    def test_goto_raises_on_missing_entry(self, booleans):
        generator = ConventionalGenerator(booleans)
        generator.generate()
        table = lr0_table(generator.graph)
        with pytest.raises(LookupError):
            table.goto(0, NonTerminal("NOPE"))

    def test_cell_count_positive(self, booleans):
        generator = ConventionalGenerator(booleans)
        generator.generate()
        assert lr0_table(generator.graph).cell_count() >= 20


class TestSLRTable:
    def test_slr_resolves_lr0_conflicts(self):
        table = slr_table(grammar_from_text(SLR_GRAMMAR))
        assert table.is_deterministic

    def test_slr_parses(self):
        grammar = grammar_from_text(SLR_GRAMMAR)
        table = slr_table(grammar)
        parser = SimpleLRParser(TableControl(table), grammar)
        assert parser.parse(toks("n + n + n")).accepted
        assert not parser.recognize(toks("n +"))

    def test_slr_conflicts_on_lalr_grammar(self):
        table = slr_table(grammar_from_text(LALR_GRAMMAR))
        assert not table.is_deterministic


class TestLALRTable:
    def test_lalr_clean_on_lalr_grammar(self):
        table = lalr_table(grammar_from_text(LALR_GRAMMAR))
        assert table.is_deterministic

    def test_lalr_parses_lalr_grammar(self):
        grammar = grammar_from_text(LALR_GRAMMAR)
        parser = SimpleLRParser(
            TableControl(lalr_table(grammar)), grammar
        )
        assert parser.recognize(toks("id = id"))
        assert parser.recognize(toks("* id = * * id"))
        assert parser.recognize(toks("id"))
        assert not parser.recognize(toks("= id"))

    def test_lalr_conflicts_on_non_lalr_grammar(self):
        table = lalr_table(grammar_from_text(NON_LALR_GRAMMAR))
        conflicts = table.conflicts()
        assert conflicts, "LALR merging must produce reduce/reduce here"
        assert any(c.kind == "reduce/reduce" for c in conflicts)

    def test_lalr_handles_epsilon_rules(self, epsilon_grammar):
        table = lalr_table(epsilon_grammar)
        parser = SimpleLRParser(TableControl(table), epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b c"))
        assert not parser.recognize(toks("a c"))

    def test_lalr_accepts_empty_sentence_for_nullable_start(self):
        grammar = grammar_from_text(
            """
            S ::=
            S ::= a S
            START ::= S
            """
        )
        parser = SimpleLRParser(TableControl(lalr_table(grammar)), grammar)
        assert parser.recognize([])
        assert parser.recognize(toks("a a"))


class TestConflictResolution:
    def test_resolution_prefers_shift(self):
        grammar = grammar_from_text(
            """
            S ::= if S
            S ::= if S else S
            S ::= x
            START ::= S
            """
        )
        table = lalr_table(grammar)
        assert not table.is_deterministic  # dangling else
        resolved, conflicts = resolve_conflicts(table)
        assert resolved.is_deterministic
        assert conflicts
        parser = SimpleLRParser(TableControl(resolved), grammar)
        # prefer-shift binds the else to the inner if (C semantics)
        assert parser.recognize(toks("if if x else x"))

    def test_resolution_is_identity_for_clean_tables(self):
        table = lalr_table(grammar_from_text(LALR_GRAMMAR))
        resolved, conflicts = resolve_conflicts(table)
        assert conflicts == ()
        assert resolved is table

    def test_reduce_reduce_prefers_first_rule(self):
        table = lalr_table(grammar_from_text(NON_LALR_GRAMMAR))
        resolved, conflicts = resolve_conflicts(table)
        assert resolved.is_deterministic
        assert any(c.kind == "reduce/reduce" for c in conflicts)


class TestDeterministicParserErrors:
    def test_multiple_actions_raise_ambiguous(self, booleans):
        generator = ConventionalGenerator(booleans)
        generator.generate()
        table = lr0_table(generator.graph)
        parser = SimpleLRParser(TableControl(table), booleans)
        with pytest.raises(AmbiguousInputError):
            parser.parse(toks("true or true or true"))

    def test_error_carries_position(self):
        grammar = grammar_from_text(SLR_GRAMMAR)
        parser = SimpleLRParser(
            TableControl(slr_table(grammar)), grammar
        )
        with pytest.raises(ParseError) as excinfo:
            parser.parse(toks("n + +"))
        assert excinfo.value.position == 2
        assert excinfo.value.symbol == Terminal("+")
