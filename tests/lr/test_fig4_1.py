"""E2 — Fig. 4.1: the booleans grammar, its graph of item sets, its table.

The conventional generator with deterministic expansion order reproduces
the *exact* state numbering of the paper's figure:

========  =================================================  =====================
state     kernel                                             transitions
========  =================================================  =====================
0         START ::= •B                                       B→1, true→2, false→3
1         START ::= B•, B ::= B•or B, B ::= B•and B          and→4, or→5, $→accept
2         B ::= true•                                        (reduce B ::= true)
3         B ::= false•                                       (reduce B ::= false)
4         B ::= B and •B                                     B→6, true→2, false→3
5         B ::= B or •B                                      B→7, true→2, false→3
6         B ::= B and B•, B ::= B•or B, B ::= B•and B        and→4, or→5
7         B ::= B or B•,  B ::= B•or B, B ::= B•and B        and→4, or→5
========  =================================================  =====================
"""

import pytest

from repro.grammar.rules import Rule
from repro.grammar.symbols import END, NonTerminal, Terminal
from repro.lr.generator import ConventionalGenerator
from repro.lr.items import Item
from repro.lr.states import ACCEPT
from repro.lr.table import lr0_table

B = NonTerminal("B")
true, false = Terminal("true"), Terminal("false")
and_, or_ = Terminal("and"), Terminal("or")

R_TRUE = Rule(B, [true])
R_FALSE = Rule(B, [false])
R_OR = Rule(B, [B, or_, B])
R_AND = Rule(B, [B, and_, B])


@pytest.fixture()
def graph(booleans):
    generator = ConventionalGenerator(booleans)
    generator.generate()
    return generator.graph


def state(graph, uid):
    return {s.uid: s for s in graph.states()}[uid]


class TestGraphShape:
    def test_eight_states(self, graph):
        assert len(graph) == 8

    def test_all_states_complete(self, graph):
        assert all(s.is_complete for s in graph.states())

    def test_state0_kernel(self, graph):
        start_rule = next(iter(graph.grammar.start_rules()))
        assert state(graph, 0).kernel == frozenset({Item(start_rule, 0)})

    def test_state0_transitions(self, graph):
        transitions = state(graph, 0).transitions
        assert transitions[B].uid == 1
        assert transitions[true].uid == 2
        assert transitions[false].uid == 3

    def test_state1_accepts_on_end(self, graph):
        assert state(graph, 1).transitions[END] is ACCEPT

    def test_state1_operator_transitions(self, graph):
        transitions = state(graph, 1).transitions
        assert transitions[and_].uid == 4
        assert transitions[or_].uid == 5

    def test_leaf_reductions(self, graph):
        assert state(graph, 2).reductions == (R_TRUE,)
        assert state(graph, 3).reductions == (R_FALSE,)

    def test_operand_states_share_leaf_states(self, graph):
        for uid in (4, 5):
            transitions = state(graph, uid).transitions
            assert transitions[true].uid == 2
            assert transitions[false].uid == 3

    def test_goto_after_operand(self, graph):
        assert state(graph, 4).transitions[B].uid == 6
        assert state(graph, 5).transitions[B].uid == 7

    def test_reduction_states(self, graph):
        assert state(graph, 6).reductions == (R_AND,)
        assert state(graph, 7).reductions == (R_OR,)

    def test_reduction_states_keep_operator_items(self, graph):
        # kernels of 6 and 7 contain the dotted operator rules, giving the
        # s5/r3-style conflicts of Fig. 4.1(b)
        for uid, reduced in ((6, R_AND), (7, R_OR)):
            transitions = state(graph, uid).transitions
            assert transitions[and_].uid == 4
            assert transitions[or_].uid == 5
            assert Item(reduced, 3) in state(graph, uid).kernel


class TestTable:
    def test_conflict_cells_match_figure(self, graph):
        table = lr0_table(graph)
        conflicts = table.conflicts()
        # states 6 and 7 each conflict on 'or' and 'and' (shift/reduce)
        located = {(c.state, c.terminal.name) for c in conflicts}
        assert located == {
            (6, "or"),
            (6, "and"),
            (7, "or"),
            (7, "and"),
            # LR(0) reduces on *every* terminal: states 6/7 also reduce
            # under true/false where no shift exists — single actions, so
            # no conflicts there.
        }

    def test_render_mentions_accept(self, graph):
        rendered = lr0_table(graph).render()
        assert "acc" in rendered
        assert "s2" in rendered

    def test_lr0_table_requires_complete_graph(self, booleans):
        from repro.lr.graph import ItemSetGraph

        partial = ItemSetGraph(booleans)
        with pytest.raises(ValueError):
            lr0_table(partial)


class TestDeterminism:
    def test_regeneration_reproduces_numbering(self, booleans):
        first = ConventionalGenerator(booleans)
        first.generate()
        second = ConventionalGenerator(booleans.copy())
        second.generate()
        a = {
            s.uid: sorted(str(i) for i in s.kernel) for s in first.graph.states()
        }
        b = {
            s.uid: sorted(str(i) for i in s.kernel) for s in second.graph.states()
        }
        assert a == b
