"""Parse-table serialization round trips."""

import json

import pytest

from repro.grammar.builders import grammar_from_text
from repro.lr.generator import ConventionalGenerator
from repro.lr.lalr import lalr_table
from repro.lr.serialize import (
    dumps,
    load_table,
    loads,
    save_table,
    table_from_dict,
    table_to_dict,
)
from repro.lr.table import TableControl, lr0_table, resolve_conflicts
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.parallel import PoolParser

from ..conftest import toks


def booleans_lr0(booleans):
    generator = ConventionalGenerator(booleans)
    generator.generate()
    return lr0_table(generator.graph)


class TestRoundTrip:
    def test_dict_round_trip_preserves_behavior(self, booleans):
        table = booleans_lr0(booleans)
        clone = table_from_dict(table_to_dict(table))
        parser = PoolParser(TableControl(clone), booleans)
        assert parser.recognize(toks("true or false and true"))
        assert not parser.recognize(toks("or"))

    def test_json_text_round_trip(self, booleans):
        table = booleans_lr0(booleans)
        clone = loads(dumps(table))
        assert len(clone) == len(table)
        assert clone.start == table.start
        assert clone.conflicts() and len(clone.conflicts()) == len(
            table.conflicts()
        )

    def test_file_round_trip(self, booleans, tmp_path):
        table = booleans_lr0(booleans)
        path = tmp_path / "booleans.table.json"
        save_table(table, str(path))
        clone = load_table(str(path))
        parser = PoolParser(TableControl(clone), booleans)
        assert parser.recognize(toks("true"))

    def test_lalr_lookaheads_survive(self):
        grammar = grammar_from_text(
            """
            S ::= L = R
            S ::= R
            L ::= * R
            L ::= id
            R ::= L
            START ::= S
            """
        )
        table = lalr_table(grammar)
        clone = loads(dumps(table))
        assert clone.is_deterministic
        parser = SimpleLRParser(TableControl(clone), grammar)
        assert parser.recognize(toks("* id = id"))
        assert not parser.recognize(toks("= id"))

    def test_sdf_lalr_round_trip(self):
        from repro.sdf.corpus import corpus_tokens, sdf_grammar

        grammar = sdf_grammar()
        table, _conflicts = resolve_conflicts(lalr_table(grammar))
        clone = loads(dumps(table))
        parser = SimpleLRParser(TableControl(clone), grammar)
        assert parser.parse(corpus_tokens()["Exam.sdf"]).accepted

    def test_output_is_stable_json(self, booleans):
        table = booleans_lr0(booleans)
        assert dumps(table) == dumps(table)
        payload = json.loads(dumps(table))
        assert payload["format"] == 1


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            table_from_dict({"format": 99})

    def test_unknown_symbol_kind_rejected(self, booleans):
        payload = table_to_dict(booleans_lr0(booleans))
        payload["rules"][0]["rhs"][0][0] = "?"
        with pytest.raises(ValueError):
            table_from_dict(payload)


class TestCrashSafeWrites:
    """``save_payload`` must never leave a truncated file at the target path."""

    def test_interrupted_write_preserves_previous_payload(self, tmp_path, monkeypatch):
        from repro.lr import serialize

        path = str(tmp_path / "snapshot.json")
        serialize.save_payload({"generation": 1}, path)

        real_dump = json.dump

        def dump_then_die(payload, handle, **kwargs):
            real_dump(payload, handle, **kwargs)
            handle.flush()
            raise OSError("disk full")

        monkeypatch.setattr(serialize.json, "dump", dump_then_die)
        with pytest.raises(OSError):
            serialize.save_payload({"generation": 2}, path)
        monkeypatch.undo()

        # The target still holds the previous complete payload, and the
        # failed attempt left no temp litter behind.
        assert serialize.load_payload(path) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot.json"]

    def test_fresh_write_is_all_or_nothing(self, tmp_path, monkeypatch):
        from repro.lr import serialize

        path = str(tmp_path / "new.json")

        def die_immediately(payload, handle, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(serialize.json, "dump", die_immediately)
        with pytest.raises(OSError):
            serialize.save_payload({"generation": 1}, path)
        monkeypatch.undo()
        # No file appears at all — a watcher can never read a fragment.
        assert list(tmp_path.iterdir()) == []

    def test_save_table_round_trips_atomically(self, tmp_path, booleans):
        table = booleans_lr0(booleans)
        path = str(tmp_path / "table.json")
        save_table(table, path)
        assert load_table(path).is_deterministic == table.is_deterministic
        assert dumps(load_table(path)) == dumps(table)
