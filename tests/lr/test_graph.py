"""CLOSURE, EXPAND and the ItemSetGraph bookkeeping (section 4)."""

import pytest

from repro.grammar.builders import grammar_from_text
from repro.grammar.rules import Rule
from repro.grammar.symbols import END, NonTerminal, Terminal
from repro.lr.graph import ItemSetGraph
from repro.lr.items import Item
from repro.lr.states import ACCEPT


class TestClosure:
    def test_closure_adds_rules_of_next_nonterminal(self, booleans):
        graph = ItemSetGraph(booleans)
        closure = graph.closure(graph.start.kernel)
        texts = {str(item) for item in closure}
        assert "B ::= • true" in texts
        assert "B ::= • B or B" in texts

    def test_closure_is_transitive(self):
        grammar = grammar_from_text(
            """
            S ::= A
            A ::= B
            B ::= b
            START ::= S
            """
        )
        graph = ItemSetGraph(grammar)
        closure = graph.closure(graph.start.kernel)
        texts = {str(item) for item in closure}
        assert "B ::= • b" in texts

    def test_closure_of_terminal_dot_adds_nothing(self, booleans):
        graph = ItemSetGraph(booleans)
        rule = Rule(NonTerminal("B"), [Terminal("true")])
        closure = graph.closure({Item(rule, 0)})
        assert closure == (Item(rule, 0),)

    def test_closure_includes_epsilon_items(self, epsilon_grammar):
        graph = ItemSetGraph(epsilon_grammar)
        closure = graph.closure(graph.start.kernel)
        texts = {str(item) for item in closure}
        assert "A ::= •" in texts

    def test_closure_handles_undefined_nonterminal(self):
        grammar = grammar_from_text("S ::= a\nSTART ::= S")
        grammar.add_rule(
            Rule(NonTerminal("S"), [NonTerminal("GHOST"), Terminal("x")])
        )
        graph = ItemSetGraph(grammar)
        closure = graph.closure(graph.start.kernel)  # must not blow up
        assert any(item.next_symbol == NonTerminal("GHOST") for item in closure)


class TestExpand:
    def test_expand_makes_state_complete(self, booleans):
        graph = ItemSetGraph(booleans)
        assert graph.start.is_initial
        graph.expand(graph.start)
        assert graph.start.is_complete

    def test_expand_links_existing_states_by_kernel(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        # expanding everything twice over must not create new states
        count = len(graph)
        assert graph.stats.states_created == count

    def test_transitions_created_for_undefined_nonterminals(self):
        # Crucial for MODIFY's lemma: transitions exist for *every* symbol
        # after a dot, even a non-terminal with no rules yet.
        grammar = grammar_from_text("S ::= a\nSTART ::= S")
        grammar.add_rule(
            Rule(NonTerminal("S"), [NonTerminal("GHOST"), Terminal("x")])
        )
        graph = ItemSetGraph(grammar)
        graph.expand(graph.start)
        assert NonTerminal("GHOST") in graph.start.transitions

    def test_epsilon_rule_contributes_reduction_in_closure_state(
        self, epsilon_grammar
    ):
        graph = ItemSetGraph(epsilon_grammar)
        graph.expand(graph.start)
        reduced = {str(rule) for rule in graph.start.reductions}
        assert "A ::= ε" in reduced

    def test_accept_transition_for_start_rule(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        accepting = [s for s in graph.states() if s.accepts_on_end()]
        assert len(accepting) == 1
        assert accepting[0].transitions[END] is ACCEPT

    def test_refcounts_incremented_per_edge(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        for state in graph.states():
            expected = sum(
                1
                for other in graph.states()
                for target in other.transitions.values()
                if target is state
            )
            pin = 1 if state is graph.start else 0
            assert state.refcount == expected + pin


class TestGraphBookkeeping:
    def test_start_state_pinned(self, booleans):
        graph = ItemSetGraph(booleans)
        with pytest.raises(ValueError):
            graph.remove_state(graph.start)

    def test_duplicate_kernel_rejected(self, booleans):
        graph = ItemSetGraph(booleans)
        with pytest.raises(ValueError):
            graph._create_state(graph.start.kernel)

    def test_state_lookup_by_kernel(self, booleans):
        graph = ItemSetGraph(booleans)
        assert graph.state_by_kernel(graph.start.kernel) is graph.start

    def test_remove_state(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        victim = next(s for s in graph.states() if s is not graph.start)
        graph.remove_state(victim)
        assert victim not in graph
        assert graph.state_by_kernel(victim.kernel) is None
        assert graph.stats.states_removed == 1

    def test_fraction_complete(self, booleans):
        graph = ItemSetGraph(booleans)
        assert graph.fraction_complete() == 0.0
        graph.expand_all()
        assert graph.fraction_complete() == 1.0

    def test_refresh_start_kernel(self, booleans):
        graph = ItemSetGraph(booleans)
        old_kernel = graph.start.kernel
        booleans.add_rule(
            Rule(booleans.start, [NonTerminal("B"), NonTerminal("B")])
        )
        graph.refresh_start_kernel()
        assert graph.start.kernel != old_kernel
        assert graph.state_by_kernel(graph.start.kernel) is graph.start
        assert graph.state_by_kernel(old_kernel) is None

    def test_validate_passes_on_complete_graph(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        graph.validate()

    def test_to_dot_renders(self, booleans):
        graph = ItemSetGraph(booleans)
        graph.expand_all()
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert "accept" in dot
