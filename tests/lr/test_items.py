"""Dotted rules: cursor mechanics and kernel identity."""

import pytest

from repro.lr.items import Item, kernel_of, sorted_items
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal

B = NonTerminal("B")
or_ = Terminal("or")
rule = Rule(B, [B, or_, B])
epsilon_rule = Rule(B, [])


class TestCursor:
    def test_initial_dot(self):
        item = Item(rule, 0)
        assert item.next_symbol == B
        assert not item.at_end

    def test_mid_dot(self):
        item = Item(rule, 1)
        assert item.next_symbol == or_
        assert item.before_dot == (B,)
        assert item.after_dot == (or_, B)

    def test_at_end(self):
        item = Item(rule, 3)
        assert item.at_end
        assert item.next_symbol is None

    def test_advance(self):
        assert Item(rule, 0).advanced() == Item(rule, 1)

    def test_advance_past_end_raises(self):
        with pytest.raises(ValueError):
            Item(rule, 3).advanced()

    def test_dot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Item(rule, 4)

    def test_epsilon_item_is_immediately_at_end(self):
        item = Item(epsilon_rule, 0)
        assert item.at_end


class TestValueSemantics:
    def test_equality_by_rule_and_dot(self):
        assert Item(rule, 1) == Item(rule, 1)
        assert Item(rule, 1) != Item(rule, 2)

    def test_hashable(self):
        assert len({Item(rule, 1), Item(rule, 1)}) == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Item(rule, 0).dot = 2  # type: ignore[misc]

    def test_display_places_bullet(self):
        assert str(Item(rule, 1)) == "B ::= B • or B"


class TestKernels:
    def test_kernel_of_is_order_insensitive(self):
        a = kernel_of([Item(rule, 0), Item(rule, 1)])
        b = kernel_of([Item(rule, 1), Item(rule, 0)])
        assert a == b

    def test_sorted_items_is_deterministic(self):
        items = [Item(rule, 2), Item(rule, 0), Item(epsilon_rule, 0)]
        assert sorted_items(items) == sorted_items(reversed(items))
