"""Symbols: identity, interning, ordering, coercion."""

import pickle

import pytest

from repro.grammar.symbols import (
    END,
    NonTerminal,
    START,
    START_NAME,
    Symbol,
    Terminal,
    as_symbol,
)


class TestIdentity:
    def test_equal_terminals_are_identical(self):
        assert Terminal("x") is Terminal("x")

    def test_equal_nonterminals_are_identical(self):
        assert NonTerminal("E") is NonTerminal("E")

    def test_terminal_differs_from_nonterminal_of_same_name(self):
        assert Terminal("E") != NonTerminal("E")
        assert hash(Terminal("E")) != hash(NonTerminal("E"))

    def test_different_names_differ(self):
        assert Terminal("a") != Terminal("b")

    def test_end_marker_is_a_terminal(self):
        assert isinstance(END, Terminal)
        assert END.name == "$"

    def test_start_symbol(self):
        assert isinstance(START, NonTerminal)
        assert START.name == START_NAME


class TestValidation:
    def test_symbol_itself_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Symbol("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Terminal("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Terminal(7)  # type: ignore[arg-type]


class TestOrdering:
    def test_terminals_sort_before_nonterminals(self):
        assert Terminal("z") < NonTerminal("a")

    def test_within_class_by_name(self):
        assert Terminal("a") < Terminal("b")
        assert NonTerminal("A") < NonTerminal("B")

    def test_sorting_is_stable_and_total(self):
        symbols = [NonTerminal("B"), Terminal("b"), Terminal("a"), NonTerminal("A")]
        ordered = sorted(symbols)
        assert ordered == [
            Terminal("a"),
            Terminal("b"),
            NonTerminal("A"),
            NonTerminal("B"),
        ]


class TestKindPredicates:
    def test_terminal_predicates(self):
        assert Terminal("x").is_terminal
        assert not Terminal("x").is_nonterminal

    def test_nonterminal_predicates(self):
        assert NonTerminal("X").is_nonterminal
        assert not NonTerminal("X").is_terminal


class TestCoercion:
    def test_symbols_pass_through(self):
        t = Terminal("x")
        assert as_symbol(t) is t

    def test_string_defaults_to_terminal(self):
        assert as_symbol("x") == Terminal("x")

    def test_string_in_nonterminal_set(self):
        assert as_symbol("E", frozenset({"E"})) == NonTerminal("E")

    def test_start_name_is_always_nonterminal(self):
        assert as_symbol(START_NAME) == START


class TestDisplay:
    def test_str_is_bare_name(self):
        assert str(Terminal("or")) == "or"
        assert str(NonTerminal("B")) == "B"

    def test_repr_mentions_class(self):
        assert "Terminal" in repr(Terminal("x"))
        assert "NonTerminal" in repr(NonTerminal("X"))


class TestPickle:
    def test_round_trip_preserves_interning(self):
        t = Terminal("x")
        clone = pickle.loads(pickle.dumps(t))
        assert clone is t
