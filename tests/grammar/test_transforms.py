"""Iterator desugaring and grammar augmentation."""

from repro.grammar import transforms
from repro.grammar.builders import grammar_from_text
from repro.grammar.grammar import Grammar
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.core.ipg import IPG


def _accepts(grammar: Grammar, sentence: str) -> bool:
    # Split here: IPG.coerce_tokens rejects blank *strings* outright, and
    # several of these languages legitimately contain the empty sentence.
    return IPG(grammar.copy()).recognize(sentence.split())


class TestPlus:
    def test_creates_left_recursive_list(self):
        grammar = Grammar()
        nt = transforms.plus(grammar, Terminal("a"))
        assert nt == NonTerminal("a+")
        assert Rule(nt, [Terminal("a")]) in grammar
        assert Rule(nt, [nt, Terminal("a")]) in grammar

    def test_idempotent(self):
        grammar = Grammar()
        first = transforms.plus(grammar, Terminal("a"))
        count = len(grammar)
        second = transforms.plus(grammar, Terminal("a"))
        assert first == second
        assert len(grammar) == count

    def test_language(self):
        grammar = Grammar()
        nt = transforms.plus(grammar, Terminal("a"))
        transforms.augment(grammar, nt)
        assert _accepts(grammar, "a")
        assert _accepts(grammar, "a a a")
        assert not _accepts(grammar, "")


class TestStar:
    def test_language_includes_empty(self):
        grammar = Grammar()
        nt = transforms.star(grammar, Terminal("a"))
        transforms.augment(grammar, nt)
        assert _accepts(grammar, "")
        assert _accepts(grammar, "a a")

    def test_reuses_plus(self):
        grammar = Grammar()
        transforms.star(grammar, Terminal("a"))
        assert grammar.defines(NonTerminal("a+"))


class TestSeparatedLists:
    def test_separated_plus_language(self):
        grammar = Grammar()
        nt = transforms.separated_plus(grammar, Terminal("a"), Terminal(","))
        transforms.augment(grammar, nt)
        assert _accepts(grammar, "a")
        assert _accepts(grammar, "a , a , a")
        assert not _accepts(grammar, "a ,")
        assert not _accepts(grammar, ", a")

    def test_separated_star_language(self):
        grammar = Grammar()
        nt = transforms.separated_star(grammar, Terminal("a"), Terminal(","))
        transforms.augment(grammar, nt)
        assert _accepts(grammar, "")
        assert _accepts(grammar, "a , a")

    def test_distinct_separators_distinct_nonterminals(self):
        grammar = Grammar()
        comma = transforms.separated_plus(grammar, Terminal("a"), Terminal(","))
        semi = transforms.separated_plus(grammar, Terminal("a"), Terminal(";"))
        assert comma != semi


class TestOptional:
    def test_language(self):
        grammar = Grammar()
        nt = transforms.optional(grammar, Terminal("a"))
        transforms.augment(grammar, nt)
        assert _accepts(grammar, "")
        assert _accepts(grammar, "a")
        assert not _accepts(grammar, "a a")


class TestAugment:
    def test_adds_start_rule(self):
        grammar = Grammar([Rule(NonTerminal("E"), [Terminal("n")])])
        transforms.augment(grammar, NonTerminal("E"))
        assert Rule(grammar.start, [NonTerminal("E")]) in grammar

    def test_multiple_roots(self):
        grammar = Grammar(
            [
                Rule(NonTerminal("E"), [Terminal("n")]),
                Rule(NonTerminal("S"), [Terminal("s")]),
            ]
        )
        transforms.augment(grammar, NonTerminal("E"), NonTerminal("S"))
        assert len(grammar.start_rules()) == 2


class TestStripUnreachable:
    def test_removes_disconnected_rules(self):
        grammar = grammar_from_text(
            """
            S ::= a
            Z ::= z
            START ::= S
            """
        )
        removed = transforms.strip_unreachable(grammar)
        assert {str(r) for r in removed} == {"Z ::= z"}
        assert not grammar.defines(NonTerminal("Z"))

    def test_keeps_everything_reachable(self):
        grammar = grammar_from_text(
            """
            S ::= A
            A ::= a
            START ::= S
            """
        )
        assert transforms.strip_unreachable(grammar) == ()
