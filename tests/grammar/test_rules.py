"""Rules: value semantics, epsilon bodies, immutability."""

import pytest

from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal

B = NonTerminal("B")
E = NonTerminal("E")
true = Terminal("true")
or_ = Terminal("or")


class TestConstruction:
    def test_basic(self):
        rule = Rule(B, [true])
        assert rule.lhs == B
        assert rule.rhs == (true,)

    def test_epsilon_body(self):
        rule = Rule(B, [])
        assert rule.is_epsilon
        assert len(rule) == 0

    def test_lhs_must_be_nonterminal(self):
        with pytest.raises(TypeError):
            Rule(true, [B])  # type: ignore[arg-type]

    def test_body_must_contain_symbols(self):
        with pytest.raises(TypeError):
            Rule(B, ["true"])  # type: ignore[list-item]


class TestValueSemantics:
    def test_structural_equality(self):
        assert Rule(B, [B, or_, B]) == Rule(B, [B, or_, B])
        assert hash(Rule(B, [B, or_, B])) == hash(Rule(B, [B, or_, B]))

    def test_label_excluded_from_equality(self):
        assert Rule(B, [true], label="a") == Rule(B, [true], label="b")
        assert hash(Rule(B, [true], label="a")) == hash(Rule(B, [true]))

    def test_different_lhs_differ(self):
        assert Rule(B, [true]) != Rule(E, [true])

    def test_different_rhs_differ(self):
        assert Rule(B, [true]) != Rule(B, [true, true])

    def test_usable_in_sets(self):
        rules = {Rule(B, [true]), Rule(B, [true]), Rule(E, [true])}
        assert len(rules) == 2


class TestImmutability:
    def test_cannot_assign_fields(self):
        rule = Rule(B, [true])
        with pytest.raises(AttributeError):
            rule.lhs = E  # type: ignore[misc]

    def test_rhs_is_tuple(self):
        assert isinstance(Rule(B, [true]).rhs, tuple)


class TestQueries:
    def test_symbols_includes_lhs(self):
        rule = Rule(B, [B, or_, B])
        assert rule.symbols() == (B, B, or_, B)

    def test_terminals_and_nonterminals(self):
        rule = Rule(B, [B, or_, B])
        assert rule.terminals() == (or_,)
        assert rule.nonterminals() == (B, B, B)

    def test_sorting_is_deterministic(self):
        rules = [Rule(E, [true]), Rule(B, [true]), Rule(B, [])]
        assert sorted(rules) == [Rule(B, []), Rule(B, [true]), Rule(E, [true])]


class TestDisplay:
    def test_str_uses_bnf_arrow(self):
        assert str(Rule(B, [B, or_, B])) == "B ::= B or B"

    def test_epsilon_shown_explicitly(self):
        assert str(Rule(B, [])) == "B ::= ε"
