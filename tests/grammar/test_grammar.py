"""The mutable Grammar: edits, observers, derived views, validation."""

import pytest

from repro.grammar.grammar import Grammar, GrammarError
from repro.grammar.rules import Rule
from repro.grammar.symbols import END, NonTerminal, START, Terminal

B = NonTerminal("B")
true = Terminal("true")
false = Terminal("false")
or_ = Terminal("or")


def booleans_rules():
    return [
        Rule(B, [true]),
        Rule(B, [false]),
        Rule(B, [B, or_, B]),
        Rule(START, [B]),
    ]


class TestEdits:
    def test_add_returns_true_on_change(self):
        grammar = Grammar()
        assert grammar.add_rule(Rule(B, [true])) is True

    def test_add_duplicate_returns_false(self):
        grammar = Grammar([Rule(B, [true])])
        assert grammar.add_rule(Rule(B, [true])) is False
        assert len(grammar) == 1

    def test_delete_returns_true_on_change(self):
        grammar = Grammar([Rule(B, [true])])
        assert grammar.delete_rule(Rule(B, [true])) is True
        assert len(grammar) == 0

    def test_delete_absent_returns_false(self):
        grammar = Grammar()
        assert grammar.delete_rule(Rule(B, [true])) is False

    def test_replace_rule(self):
        grammar = Grammar([Rule(B, [true])])
        grammar.replace_rule(Rule(B, [true]), Rule(B, [false]))
        assert Rule(B, [false]) in grammar
        assert Rule(B, [true]) not in grammar

    def test_replace_absent_raises(self):
        grammar = Grammar()
        with pytest.raises(GrammarError):
            grammar.replace_rule(Rule(B, [true]), Rule(B, [false]))

    def test_revision_counts_changes_only(self):
        grammar = Grammar()
        base = grammar.revision
        grammar.add_rule(Rule(B, [true]))
        grammar.add_rule(Rule(B, [true]))  # no-op
        grammar.delete_rule(Rule(B, [true]))
        assert grammar.revision == base + 2

    def test_batch_update_deletes_first(self):
        grammar = Grammar([Rule(B, [true])])
        grammar.update(add=[Rule(B, [false])], delete=[Rule(B, [true])])
        assert grammar.rules == frozenset({Rule(B, [false])})


class TestValidation:
    def test_start_not_allowed_in_rhs(self):
        grammar = Grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule(Rule(B, [START]))

    def test_end_marker_not_allowed_in_rhs(self):
        grammar = Grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule(Rule(B, [END]))

    def test_non_rule_rejected(self):
        grammar = Grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule("B ::= true")  # type: ignore[arg-type]


class TestDerivedViews:
    def test_terminals_and_nonterminals(self):
        grammar = Grammar(booleans_rules())
        assert grammar.terminals == frozenset({true, false, or_})
        assert grammar.nonterminals == frozenset({B, START})

    def test_views_shrink_after_delete(self):
        grammar = Grammar(booleans_rules())
        grammar.delete_rule(Rule(B, [false]))
        assert false not in grammar.terminals

    def test_symbol_shared_by_rules_survives_single_delete(self):
        grammar = Grammar([Rule(B, [true]), Rule(B, [true, or_, true])])
        grammar.delete_rule(Rule(B, [true]))
        assert true in grammar.terminals

    def test_rules_for_preserves_insertion_order(self):
        grammar = Grammar(booleans_rules())
        assert grammar.rules_for(B) == (
            Rule(B, [true]),
            Rule(B, [false]),
            Rule(B, [B, or_, B]),
        )

    def test_copy_preserves_insertion_order(self):
        grammar = Grammar(booleans_rules())
        assert grammar.copy().rules_for(B) == grammar.rules_for(B)

    def test_start_rules(self):
        grammar = Grammar(booleans_rules())
        assert grammar.start_rules() == (Rule(START, [B]),)

    def test_defines(self):
        grammar = Grammar(booleans_rules())
        assert grammar.defines(B)
        assert not grammar.defines(NonTerminal("Z"))

    def test_iteration_is_deterministic(self):
        grammar = Grammar(booleans_rules())
        assert list(grammar) == sorted(grammar.rules)


class TestObservers:
    def test_observer_sees_additions_and_deletions(self):
        grammar = Grammar()
        events = []
        grammar.subscribe(lambda g, rule, added: events.append((rule, added)))
        rule = Rule(B, [true])
        grammar.add_rule(rule)
        grammar.delete_rule(rule)
        assert events == [(rule, True), (rule, False)]

    def test_observer_not_called_for_noop(self):
        grammar = Grammar([Rule(B, [true])])
        events = []
        grammar.subscribe(lambda g, rule, added: events.append(added))
        grammar.add_rule(Rule(B, [true]))
        assert events == []

    def test_unsubscribe(self):
        grammar = Grammar()
        events = []
        unsubscribe = grammar.subscribe(
            lambda g, rule, added: events.append(added)
        )
        unsubscribe()
        grammar.add_rule(Rule(B, [true]))
        assert events == []

    def test_observer_runs_after_update(self):
        grammar = Grammar()
        seen = []
        grammar.subscribe(
            lambda g, rule, added: seen.append(rule in g)
        )
        grammar.add_rule(Rule(B, [true]))
        assert seen == [True]


class TestSnapshots:
    def test_snapshot_is_frozen(self):
        grammar = Grammar(booleans_rules())
        snap = grammar.snapshot()
        grammar.delete_rule(Rule(B, [true]))
        assert Rule(B, [true]) in snap

    def test_copy_is_independent(self):
        grammar = Grammar(booleans_rules())
        clone = grammar.copy()
        clone.delete_rule(Rule(B, [true]))
        assert Rule(B, [true]) in grammar

    def test_copy_does_not_share_observers(self):
        grammar = Grammar()
        events = []
        grammar.subscribe(lambda g, r, a: events.append(a))
        clone = grammar.copy()
        clone.add_rule(Rule(B, [true]))
        assert events == []


class TestDisplay:
    def test_pretty_lists_rules(self):
        grammar = Grammar([Rule(B, [true]), Rule(B, [false])])
        assert "B ::= true" in grammar.pretty()
        assert "B ::= false" in grammar.pretty()
