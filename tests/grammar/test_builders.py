"""The builder DSL and the BNF text notation."""

import pytest

from repro.grammar.builders import (
    GrammarBuilder,
    grammar_from_text,
    rules_from_text,
)
from repro.grammar.grammar import GrammarError
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal


class TestGrammarBuilder:
    def test_lhs_names_become_nonterminals_everywhere(self):
        grammar = (
            GrammarBuilder()
            .rule("B", ["true"])
            .rule("B", ["B", "or", "B"])
            .start("B")
            .build()
        )
        rule = next(r for r in grammar.rules if len(r.rhs) == 3)
        assert rule.rhs[0] == NonTerminal("B")
        assert rule.rhs[1] == Terminal("or")

    def test_sort_declaration_forces_nonterminal(self):
        grammar = (
            GrammarBuilder()
            .sort("X")
            .rule("B", ["X"])
            .start("B")
            .build()
        )
        (rule,) = grammar.rules_for(NonTerminal("B"))
        assert rule.rhs[0] == NonTerminal("X")

    def test_undeclared_name_is_terminal(self):
        grammar = GrammarBuilder().rule("B", ["x"]).start("B").build()
        (rule,) = grammar.rules_for(NonTerminal("B"))
        assert rule.rhs[0] == Terminal("x")

    def test_start_adds_start_rules(self):
        grammar = GrammarBuilder().rule("B", ["x"]).start("B").build()
        assert len(grammar.start_rules()) == 1

    def test_explicit_symbols_pass_through(self):
        grammar = (
            GrammarBuilder()
            .rule("B", [Terminal("B")])  # a terminal spelled like a sort
            .start("B")
            .build()
        )
        (rule,) = grammar.rules_for(NonTerminal("B"))
        assert rule.rhs[0] == Terminal("B")

    def test_build_rules_without_grammar(self):
        rules = GrammarBuilder().rule("B", ["x"]).start("B").build_rules()
        assert Rule(NonTerminal("B"), [Terminal("x")]) in rules


class TestTextNotation:
    def test_booleans(self):
        grammar = grammar_from_text(
            """
            B ::= true
            B ::= false
            START ::= B
            """
        )
        assert len(grammar) == 3
        assert grammar.defines(NonTerminal("B"))

    def test_epsilon_rule_via_empty_rhs(self):
        grammar = grammar_from_text("A ::=\nSTART ::= A")
        assert Rule(NonTerminal("A"), []) in grammar

    def test_epsilon_rule_via_epsilon_sign(self):
        grammar = grammar_from_text("A ::= ε\nSTART ::= A")
        assert Rule(NonTerminal("A"), []) in grammar

    def test_comments_and_blank_lines_ignored(self):
        grammar = grammar_from_text(
            """
            # the booleans
            B ::= true

            START ::= B  # top
            """
        )
        assert len(grammar) == 2

    def test_missing_arrow_rejected(self):
        with pytest.raises(GrammarError):
            grammar_from_text("B = true")

    def test_missing_lhs_rejected(self):
        with pytest.raises(GrammarError):
            grammar_from_text("::= true")

    def test_rules_from_text(self):
        rules = rules_from_text("B ::= x\nSTART ::= B")
        assert len(rules) == 2
