"""FIRST / FOLLOW / nullable / reachability / usefulness analyses."""


from repro.grammar.analysis import GrammarAnalysis
from repro.grammar.builders import grammar_from_text
from repro.grammar.symbols import END, NonTerminal, Terminal


def analysis_of(text: str) -> GrammarAnalysis:
    return GrammarAnalysis(grammar_from_text(text))


class TestNullable:
    def test_direct_epsilon(self):
        a = analysis_of("A ::=\nSTART ::= A")
        assert a.is_nullable(NonTerminal("A"))

    def test_transitive_epsilon(self):
        a = analysis_of(
            """
            A ::= B B
            B ::=
            START ::= A
            """
        )
        assert a.is_nullable(NonTerminal("A"))

    def test_terminal_blocks_nullability(self):
        a = analysis_of("A ::= x\nSTART ::= A")
        assert not a.is_nullable(NonTerminal("A"))
        assert not a.is_nullable(Terminal("x"))

    def test_sequence_nullable(self):
        a = analysis_of(
            """
            A ::=
            B ::=
            START ::= A B
            """
        )
        assert a.sequence_nullable([NonTerminal("A"), NonTerminal("B")])
        assert not a.sequence_nullable([NonTerminal("A"), Terminal("x")])
        assert a.sequence_nullable([])


class TestFirst:
    def test_terminal_heads(self):
        a = analysis_of(
            """
            E ::= n
            E ::= ( E )
            START ::= E
            """
        )
        assert a.first(NonTerminal("E")) == frozenset(
            {Terminal("n"), Terminal("(")}
        )

    def test_first_through_nullable(self):
        a = analysis_of(
            """
            S ::= A b
            A ::=
            A ::= a
            START ::= S
            """
        )
        assert a.first(NonTerminal("S")) == frozenset(
            {Terminal("a"), Terminal("b")}
        )

    def test_first_of_sequence(self):
        a = analysis_of(
            """
            A ::=
            A ::= a
            START ::= A
            """
        )
        assert a.first_of([NonTerminal("A"), Terminal("z")]) == frozenset(
            {Terminal("a"), Terminal("z")}
        )

    def test_left_recursion_terminates(self):
        a = analysis_of(
            """
            E ::= E + n
            E ::= n
            START ::= E
            """
        )
        assert a.first(NonTerminal("E")) == frozenset({Terminal("n")})


class TestFollow:
    def test_start_followed_by_end(self):
        a = analysis_of("START ::= E\nE ::= n")
        assert END in a.follow(NonTerminal("START"))
        assert END in a.follow(NonTerminal("E"))

    def test_follow_from_successor(self):
        a = analysis_of(
            """
            S ::= E x
            E ::= n
            START ::= S
            """
        )
        assert Terminal("x") in a.follow(NonTerminal("E"))

    def test_follow_through_nullable_tail(self):
        a = analysis_of(
            """
            S ::= E A y
            A ::=
            E ::= n
            START ::= S
            """
        )
        follow_e = a.follow(NonTerminal("E"))
        assert Terminal("y") in follow_e

    def test_follow_inherits_from_lhs(self):
        a = analysis_of(
            """
            S ::= x E
            E ::= n
            START ::= S z
            """
        )
        # not possible: START cannot appear in rhs; use another pair
        a = analysis_of(
            """
            S ::= T
            T ::= n
            U ::= S w
            START ::= U
            """
        )
        assert Terminal("w") in a.follow(NonTerminal("T"))


class TestCachingAndInvalidation:
    def test_results_refresh_after_edit(self):
        from repro.grammar.grammar import Grammar
        from repro.grammar.rules import Rule

        grammar = grammar_from_text("E ::= n\nSTART ::= E")
        analysis = GrammarAnalysis(grammar)
        assert Terminal("x") not in analysis.first(NonTerminal("E"))
        grammar.add_rule(Rule(NonTerminal("E"), [Terminal("x")]))
        assert Terminal("x") in analysis.first(NonTerminal("E"))


class TestStructural:
    def test_reachable(self):
        a = analysis_of(
            """
            S ::= A
            A ::= a
            Z ::= z
            START ::= S
            """
        )
        reachable = a.reachable()
        assert NonTerminal("A") in reachable
        assert NonTerminal("Z") not in reachable

    def test_productive(self):
        a = analysis_of(
            """
            S ::= a
            L ::= L x
            START ::= S
            """
        )
        productive = a.productive()
        assert NonTerminal("S") in productive
        assert NonTerminal("L") not in productive

    def test_useless_rules(self):
        a = analysis_of(
            """
            S ::= a
            S ::= L
            L ::= L x
            Z ::= z
            START ::= S
            """
        )
        useless = a.useless_rules()
        texts = {str(rule) for rule in useless}
        assert "Z ::= z" in texts
        assert "L ::= L x" in texts
        assert "S ::= L" in texts
        assert "S ::= a" not in texts

    def test_left_recursive_direct(self):
        a = analysis_of(
            """
            E ::= E + n
            E ::= n
            START ::= E
            """
        )
        assert NonTerminal("E") in a.left_recursive()

    def test_left_recursive_indirect_through_nullable(self):
        a = analysis_of(
            """
            A ::= N B x
            B ::= A y
            N ::=
            START ::= A
            """
        )
        assert NonTerminal("A") in a.left_recursive()

    def test_not_left_recursive(self):
        a = analysis_of(
            """
            E ::= n + E
            E ::= n
            START ::= E
            """
        )
        assert NonTerminal("E") not in a.left_recursive()

    def test_cycle_detection(self):
        a = analysis_of(
            """
            A ::= B
            B ::= A
            A ::= a
            START ::= A
            """
        )
        assert a.has_cycles()

    def test_no_cycles(self):
        a = analysis_of(
            """
            E ::= E + n
            E ::= n
            START ::= E
            """
        )
        assert not a.has_cycles()
