"""SDF AST records: rendering and validation."""

from repro.sdf.ast import (
    AbbrevFDef,
    AbbrevFList,
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    ContextFreeSyntax,
    Function,
    LexCharClass,
    LexLiteral,
    LexSortRef,
    LexicalFunction,
    LexicalSyntax,
    PrioDef,
    SdfDefinition,
)


class TestRendering:
    def test_cf_elements(self):
        assert str(CfSort("EXP")) == "EXP"
        assert str(CfLiteral("module")) == '"module"'
        assert str(CfIter("DECL", "+")) == "DECL+"
        assert str(CfSepIter("SORT", ",", "+")) == '{SORT ","}+'

    def test_lex_elements(self):
        assert str(LexSortRef("LETTER")) == "LETTER"
        assert str(LexSortRef("LETTER", "*")) == "LETTER*"
        assert str(LexLiteral("+")) == '"+"'
        assert str(LexCharClass("[a-z]")) == "[a-z]"
        assert str(LexCharClass("[a-z]", negated=True)) == "~[a-z]"

    def test_function(self):
        function = Function(
            elems=(CfLiteral("x"), CfSort("T")),
            sort="S",
            attributes=("left-assoc",),
        )
        assert str(function) == '"x" T -> S {left-assoc}'

    def test_lexical_function(self):
        function = LexicalFunction((LexSortRef("LETTER", "+"),), "ID")
        assert str(function) == "LETTER+ -> ID"

    def test_priorities(self):
        chain = PrioDef(
            lists=(
                AbbrevFList((AbbrevFDef((CfSort("A"),), "S"),)),
                AbbrevFList(
                    (
                        AbbrevFDef((CfSort("B"),), "S"),
                        AbbrevFDef((CfSort("C"),), None),
                    )
                ),
            ),
            direction=">",
        )
        assert str(chain) == "A -> S > (B -> S, C)"


class TestValidation:
    def _definition(self, functions, sorts=("S",), lexical_sorts=()):
        return SdfDefinition(
            name="m",
            lexical=LexicalSyntax(sorts=tuple(lexical_sorts)),
            contextfree=ContextFreeSyntax(
                sorts=tuple(sorts), functions=tuple(functions)
            ),
            end_name="m",
        )

    def test_clean(self):
        definition = self._definition(
            [Function((CfLiteral("x"),), "S")]
        )
        assert definition.validate() == []

    def test_end_name_mismatch(self):
        definition = SdfDefinition(name="a", end_name="b")
        assert any("ends with" in p for p in definition.validate())

    def test_undeclared_element_sort(self):
        definition = self._definition([Function((CfSort("T"),), "S")])
        assert any("undeclared sort 'T'" in p for p in definition.validate())

    def test_undeclared_target_sort(self):
        definition = self._definition([Function((CfLiteral("x"),), "T")])
        assert any("undeclared sort 'T'" in p for p in definition.validate())

    def test_lexical_sorts_count_as_declared(self):
        definition = self._definition(
            [Function((CfSort("ID"),), "S")], lexical_sorts=("ID",)
        )
        assert definition.validate() == []

    def test_lexical_syntax_emptiness(self):
        assert LexicalSyntax().is_empty
        assert not LexicalSyntax(sorts=("X",)).is_empty
