"""E7 prerequisites — the measurement corpus of section 7.

These tests pin down the experimental setup: exact token counts
(37/166/342/475), bootstrap-parseability, self-description (SDF.sdf parsed
by the grammar derived from itself), and the single-rule modification.
"""

import pytest

from repro.core.ipg import IPG
from repro.grammar.symbols import NonTerminal, Terminal
from repro.sdf.corpus import (
    CORPUS,
    TOKEN_COUNTS,
    corpus_tokens,
    modification_rule,
    sdf_definition,
    sdf_grammar,
)
from repro.sdf.lexer import terminal_stream
from repro.sdf.parser import parse_sdf


class TestTokenCounts:
    @pytest.mark.parametrize("name", list(CORPUS))
    def test_counts_match_the_paper(self, name):
        assert len(terminal_stream(CORPUS[name])) == TOKEN_COUNTS[name]

    def test_the_four_files(self):
        assert TOKEN_COUNTS == {
            "exp.sdf": 37,
            "Exam.sdf": 166,
            "SDF.sdf": 342,
            "ASF.sdf": 475,
        }


class TestWellFormedness:
    @pytest.mark.parametrize("name", list(CORPUS))
    def test_bootstrap_parseable(self, name):
        definition = parse_sdf(CORPUS[name])
        assert definition.validate() == []

    def test_sdf_grammar_statistics(self):
        grammar = sdf_grammar()
        assert len(grammar) == 61
        assert NonTerminal("CF-ELEM") in grammar.nonterminals
        assert Terminal("ID") in grammar.terminals


class TestSelfDescription:
    @pytest.fixture(scope="class")
    def ipg(self):
        return IPG(sdf_grammar())

    @pytest.mark.parametrize("name", list(CORPUS))
    def test_corpus_accepted_unambiguously(self, ipg, name):
        result = ipg.parse(corpus_tokens()[name])
        assert result.accepted
        assert len(result.trees) == 1

    def test_nonsense_rejected(self, ipg):
        assert not ipg.recognize([Terminal("end"), Terminal("module")])

    def test_truncated_input_rejected(self, ipg):
        tokens = corpus_tokens()["exp.sdf"][:-2]
        assert not ipg.recognize(tokens)


class TestModification:
    def test_rule_shape(self):
        grammar = sdf_grammar()
        rule = modification_rule(grammar)
        assert rule.lhs == NonTerminal("CF-ELEM")
        assert rule.rhs == (
            Terminal("("),
            NonTerminal("CF-ELEM+"),
            Terminal(")?"),
        )

    def test_single_add_rule(self):
        grammar = sdf_grammar()
        rule = modification_rule(grammar)
        size = len(grammar)
        grammar.add_rule(rule)
        assert len(grammar) == size + 1

    def test_inputs_still_parse_after_modification(self):
        grammar = sdf_grammar()
        ipg = IPG(grammar)
        tokens = corpus_tokens()
        assert ipg.parse(tokens["Exam.sdf"]).accepted
        ipg.add_rule(modification_rule(grammar))
        for name, stream in tokens.items():
            assert ipg.parse(stream).accepted, name

    def test_modification_extends_language(self):
        grammar = sdf_grammar()
        ipg = IPG(grammar)
        # a function definition using the new optional group
        sentence = terminal_stream(
            """
module m
begin
  context-free syntax
    sorts S
    functions
""" ) + [Terminal("("), Terminal("ID"), Terminal(")?")] + terminal_stream(
            """
      -> S
end m
"""
        )
        assert not ipg.recognize(sentence)
        ipg.add_rule(modification_rule(grammar))
        assert ipg.recognize(sentence)


class TestLexicalSection:
    def test_sdf_defines_its_lexical_sorts(self):
        definition = sdf_definition()
        defined = {f.sort for f in definition.lexical.functions}
        assert {"ID", "LITERAL", "CHAR-CLASS", "ITERATOR"} <= defined

    def test_layout_declared(self):
        definition = sdf_definition()
        assert "WHITE-SPACE" in definition.lexical.layout
        assert "COMMENT" in definition.lexical.layout
