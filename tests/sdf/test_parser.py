"""The SDF bootstrap parser: AST construction and error reporting."""

import pytest

from repro.sdf.ast import (
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    LexCharClass,
    LexSortRef,
)
from repro.sdf.parser import parse_sdf
from repro.sdf.tokens import SdfSyntaxError

MINIMAL = """
module tiny
begin
  context-free syntax
    sorts S
    functions
      "x" -> S
end tiny
"""

FULL = """
module full
begin
  lexical syntax
    sorts LETTER, ID
    layout WS
    functions
      [a-z]      -> LETTER
      LETTER+    -> ID
      [\\ \\t]    -> WS
  context-free syntax
    sorts S, T
    priorities
      "a" T -> S > "b" T -> S,
      ( "c" -> T, "d" -> T ) < T T -> S
    functions
      "a" T          -> S
      T T            -> S  {left-assoc, par}
      {T ","}+       -> S
      ID             -> T
      T "?"          -> T
      ID*            -> T
end full
"""


class TestMinimal:
    def test_module_names(self):
        definition = parse_sdf(MINIMAL)
        assert definition.name == "tiny"
        assert definition.end_name == "tiny"
        assert definition.lexical.is_empty

    def test_function(self):
        definition = parse_sdf(MINIMAL)
        (function,) = definition.contextfree.functions
        assert function.sort == "S"
        assert function.elems == (CfLiteral("x"),)

    def test_validate_clean(self):
        assert parse_sdf(MINIMAL).validate() == []


class TestFull:
    @pytest.fixture()
    def definition(self):
        return parse_sdf(FULL)

    def test_lexical_sorts_and_layout(self, definition):
        assert definition.lexical.sorts == ("LETTER", "ID")
        assert definition.lexical.layout == ("WS",)

    def test_lexical_functions(self, definition):
        first, second, third = definition.lexical.functions
        assert first.elems == (LexCharClass("[a-z]"),)
        assert second.elems == (LexSortRef("LETTER", "+"),)
        assert second.sort == "ID"

    def test_priorities_chains(self, definition):
        first, second = definition.contextfree.priorities
        assert first.direction == ">"
        assert len(first.lists) == 2
        assert second.direction == "<"
        assert len(second.lists[0].defs) == 2  # the parenthesized group

    def test_attributes(self, definition):
        attributed = [
            f for f in definition.contextfree.functions if f.attributes
        ]
        assert len(attributed) == 1
        assert attributed[0].attributes == ("left-assoc", "par")

    def test_element_varieties(self, definition):
        elems = [
            elem
            for function in definition.contextfree.functions
            for elem in function.elems
        ]
        assert any(isinstance(e, CfSepIter) for e in elems)
        assert any(isinstance(e, CfIter) and e.iterator == "*" for e in elems)
        assert any(isinstance(e, CfSort) for e in elems)
        assert any(isinstance(e, CfLiteral) and e.text == "?" for e in elems)

    def test_attribute_brace_vs_sepiter_brace(self, definition):
        # '{T ","}+' must not be mistaken for an attribute list
        sep_iters = [
            elem
            for function in definition.contextfree.functions
            for elem in function.elems
            if isinstance(elem, CfSepIter)
        ]
        assert sep_iters == [CfSepIter("T", ",", "+")]


class TestErrors:
    def test_missing_module_keyword(self):
        with pytest.raises(SdfSyntaxError):
            parse_sdf("begin end x")

    def test_mismatched_end_name_is_reported_by_validate(self):
        definition = parse_sdf(MINIMAL.replace("end tiny", "end wrong"))
        assert definition.validate()

    def test_trailing_input(self):
        with pytest.raises(SdfSyntaxError):
            parse_sdf(MINIMAL + "\nmodule again")

    def test_missing_arrow_target(self):
        bad = MINIMAL.replace('"x" -> S', '"x" -> "y"')
        with pytest.raises(SdfSyntaxError):
            parse_sdf(bad)

    def test_undeclared_sort_flagged(self):
        bad = MINIMAL.replace('"x" -> S', "T -> S")
        problems = parse_sdf(bad).validate()
        assert any("undeclared" in p for p in problems)

    def test_empty_abbrev_def_rejected(self):
        bad = """
module p
begin
  context-free syntax
    sorts S
    priorities
      > -> S
    functions
      "x" -> S
end p
"""
        with pytest.raises(SdfSyntaxError):
            parse_sdf(bad)
