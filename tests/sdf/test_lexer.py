"""The SDF bootstrap lexer: token classes, layout, errors."""

import pytest

from repro.grammar.symbols import Terminal
from repro.sdf.lexer import terminal_stream, tokenize
from repro.sdf.tokens import SdfSyntaxError, TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)]


class TestTokenClasses:
    def test_keywords(self):
        assert kinds("module begin end") == [TokenKind.KEYWORD] * 3

    def test_context_free_is_one_keyword(self):
        tokens = tokenize("context-free syntax")
        assert tokens[0].text == "context-free"
        assert tokens[0].kind is TokenKind.KEYWORD

    def test_identifiers(self):
        tokens = tokenize("EXP CF-ELEM a_b2")
        assert all(t.kind is TokenKind.ID for t in tokens)
        assert texts("CF-ELEM") == ["CF-ELEM"]

    def test_literals_unescape(self):
        tokens = tokenize(r'"module" "\"" "\\"')
        assert [t.text for t in tokens] == ["module", '"', "\\"]
        assert all(t.kind is TokenKind.LITERAL for t in tokens)

    def test_char_classes_keep_raw_text(self):
        (token,) = tokenize(r"[a-zA-Z0-9\-_]")
        assert token.kind is TokenKind.CHAR_CLASS
        assert token.text == r"[a-zA-Z0-9\-_]"

    def test_iterators(self):
        tokens = tokenize("+ *")
        assert all(t.kind is TokenKind.ITERATOR for t in tokens)

    def test_punctuation_longest_match(self):
        assert texts("->") == ["->"]
        # a lone '-' is not a token of the formalism at all
        with pytest.raises(SdfSyntaxError):
            tokenize("- >")

    def test_all_punctuation(self):
        text = "-> ( ) { } , > < ~ ?"
        tokens = tokenize(text)
        assert [t.text for t in tokens] == text.split()


class TestLayout:
    def test_whitespace_skipped(self):
        assert len(tokenize("  a \t b \n c ")) == 3

    def test_comments_to_end_of_line(self):
        tokens = tokenize("a -- a comment with -> tokens\nb")
        assert texts("a -- x ->\nb") == ["a", "b"]
        assert len(tokens) == 2

    def test_double_hyphen_ends_identifier(self):
        tokens = tokenize("abc--comment\ndef")
        assert [t.text for t in tokens] == ["abc", "def"]

    def test_single_hyphen_stays_in_identifier(self):
        (token,) = tokenize("context-free")
        assert token.text == "context-free"


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_literal(self):
        with pytest.raises(SdfSyntaxError):
            tokenize('"open')

    def test_newline_in_literal(self):
        with pytest.raises(SdfSyntaxError):
            tokenize('"a\nb"')

    def test_unterminated_char_class(self):
        with pytest.raises(SdfSyntaxError):
            tokenize("[abc")

    def test_dangling_escape(self):
        with pytest.raises(SdfSyntaxError):
            tokenize('"abc\\')

    def test_unexpected_character(self):
        with pytest.raises(SdfSyntaxError):
            tokenize("a ; b")


class TestTerminalMapping:
    def test_keywords_map_to_themselves(self):
        assert terminal_stream("module X") == [Terminal("module"), Terminal("ID")]

    def test_lexical_sorts(self):
        assert terminal_stream('"lit" [a] + NAME') == [
            Terminal("LITERAL"),
            Terminal("CHAR-CLASS"),
            Terminal("ITERATOR"),
            Terminal("ID"),
        ]

    def test_eof_has_no_terminal(self):
        from repro.sdf.tokens import Token

        token = Token(TokenKind.EOF, "", 1, 1)
        with pytest.raises(ValueError):
            token.terminal()
