"""SDF → core grammar normalization."""

import pytest

from repro.core.ipg import IPG
from repro.grammar.symbols import NonTerminal, Terminal
from repro.sdf.ast import CfIter, CfLiteral, Function
from repro.sdf.normalize import NormalizationError, normalize, rule_for_function
from repro.sdf.parser import parse_sdf

TEXT = """
module lists
begin
  lexical syntax
    sorts LETTER, ID
    functions
      [a-z]   -> LETTER
      LETTER+ -> ID
  context-free syntax
    sorts PROGRAM, DECL
    functions
      "program" DECL+ "end"      -> PROGRAM
      "let" ID "=" ID            -> DECL
      "block" {DECL ";"}* "end"  -> DECL
end lists
"""


@pytest.fixture()
def grammar():
    return normalize(parse_sdf(TEXT))


class TestSymbols:
    def test_cf_sorts_become_nonterminals(self, grammar):
        assert NonTerminal("PROGRAM") in grammar.nonterminals
        assert NonTerminal("DECL") in grammar.nonterminals

    def test_lexical_sorts_become_terminals(self, grammar):
        assert Terminal("ID") in grammar.terminals

    def test_literals_become_terminals(self, grammar):
        assert Terminal("program") in grammar.terminals
        assert Terminal("=") in grammar.terminals

    def test_start_rule_added(self, grammar):
        (start_rule,) = grammar.start_rules()
        assert start_rule.rhs == (NonTerminal("PROGRAM"),)


class TestIterators:
    def test_plus_list_created(self, grammar):
        assert grammar.defines(NonTerminal("DECL+"))

    def test_separated_star_created(self, grammar):
        assert grammar.defines(NonTerminal("DECL-;-list?"))

    def test_language(self, grammar):
        ipg = IPG(grammar)
        assert ipg.recognize("program let ID = ID end")
        assert ipg.recognize("program let ID = ID let ID = ID end")
        assert ipg.recognize("program block end end")
        assert ipg.recognize("program block let ID = ID ; let ID = ID end end")
        assert not ipg.recognize("program end")
        assert not ipg.recognize("program block let ID = ID ; end end")


class TestStartSortSelection:
    def test_default_is_first_declared(self):
        grammar = normalize(parse_sdf(TEXT))
        (start_rule,) = grammar.start_rules()
        assert start_rule.rhs[0].name == "PROGRAM"

    def test_explicit_start_sort(self):
        grammar = normalize(parse_sdf(TEXT), start_sort="DECL")
        (start_rule,) = grammar.start_rules()
        assert start_rule.rhs[0].name == "DECL"

    def test_unknown_start_sort_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(parse_sdf(TEXT), start_sort="NOPE")

    def test_no_sorts_rejected(self):
        text = """
module none
begin
  context-free syntax
end none
"""
        with pytest.raises(NormalizationError):
            normalize(parse_sdf(text))


class TestRuleForFunction:
    def test_modification_is_single_rule(self, grammar):
        definition = parse_sdf(TEXT)
        function = Function(
            elems=(CfLiteral("("), CfIter("DECL", "+"), CfLiteral(")")),
            sort="DECL",
        )
        size_before = len(grammar)
        rule = rule_for_function(grammar, function, definition.contextfree.sorts)
        # DECL+ already exists, so nothing was added yet
        assert len(grammar) == size_before
        grammar.add_rule(rule)
        ipg = IPG(grammar)
        assert ipg.recognize("program ( let ID = ID ) end")

    def test_new_iterator_creates_support_rules(self, grammar):
        definition = parse_sdf(TEXT)
        function = Function(
            elems=(CfIter("PROGRAM", "+"),), sort="DECL"
        )
        size_before = len(grammar)
        rule_for_function(grammar, function, definition.contextfree.sorts)
        # PROGRAM+ did not exist: two support rules appear
        assert len(grammar) == size_before + 2
