"""Shared fixtures: the paper's example grammars and small helpers."""

from __future__ import annotations

from typing import List

import pytest

from repro.grammar.builders import grammar_from_text
from repro.grammar.grammar import Grammar
from repro.grammar.symbols import Terminal

#: Fig. 4.1(a): the grammar of the booleans.
BOOLEANS = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""

#: Fig. 6.2(a): the smallest grammar whose graph update is non-trivial —
#: "a complicated way to describe a language with only the sentences
#: 'a b' and 'c b'".
FIG62 = """
    START ::= E
    E ::= c C
    C ::= B
    START ::= D
    D ::= a A
    A ::= B
    B ::= b
"""

#: A classic ambiguous expression grammar (Catalan-number parse counts).
AMBIGUOUS_EXPR = """
    E ::= n
    E ::= E + E
    START ::= E
"""

#: An unambiguous expression grammar with parentheses and precedence.
EXPR = """
    E ::= E + T
    E ::= T
    T ::= T * F
    T ::= F
    F ::= n
    F ::= ( E )
    START ::= E
"""

#: Epsilon rules in several positions.
EPSILON = """
    S ::= A b C
    A ::=
    A ::= a
    C ::=
    C ::= c
    START ::= S
"""


@pytest.fixture()
def booleans() -> Grammar:
    return grammar_from_text(BOOLEANS)


@pytest.fixture()
def fig62() -> Grammar:
    return grammar_from_text(FIG62)


@pytest.fixture()
def ambiguous_expr() -> Grammar:
    return grammar_from_text(AMBIGUOUS_EXPR)


@pytest.fixture()
def expr() -> Grammar:
    return grammar_from_text(EXPR)


@pytest.fixture()
def epsilon_grammar() -> Grammar:
    return grammar_from_text(EPSILON)


def toks(text: str) -> List[Terminal]:
    """Whitespace-split a sentence into terminals (test convenience)."""
    return [Terminal(part) for part in text.split()]


@pytest.fixture(name="toks")
def toks_fixture():
    return toks
