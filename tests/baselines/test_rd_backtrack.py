"""OBJ-style backtracking recursive descent: all parses, known limits."""

import pytest

from repro.baselines.rd_backtrack import (
    BacktrackBudgetExceeded,
    BacktrackingParser,
)
from repro.grammar.builders import grammar_from_text
from repro.runtime.forest import bracketed, tokens_of

from ..conftest import toks

RIGHT_AMBIGUOUS = """
    E ::= n
    E ::= n + E
    E ::= n + E + E
    START ::= E
"""


class TestRecognition:
    def test_right_recursive(self):
        parser = BacktrackingParser(
            grammar_from_text("E ::= n + E\nE ::= n\nSTART ::= E")
        )
        assert parser.recognize(toks("n + n + n"))
        assert not parser.recognize(toks("n +"))

    def test_epsilon(self, epsilon_grammar):
        parser = BacktrackingParser(epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b c"))

    def test_empty_input(self):
        parser = BacktrackingParser(
            grammar_from_text("S ::=\nSTART ::= S")
        )
        assert parser.recognize([])


class TestAllParses:
    def test_finds_every_ambiguous_parse(self):
        parser = BacktrackingParser(grammar_from_text(RIGHT_AMBIGUOUS))
        parses = parser.parses(toks("n + n + n"))
        assert len(parses) == 2
        assert {bracketed(t) for t in parses} == {
            "START(E(n + E(n + E(n))))",
            "START(E(n + E(n) + E(n)))",
        }

    def test_trees_yield_input(self):
        parser = BacktrackingParser(grammar_from_text(RIGHT_AMBIGUOUS))
        sentence = toks("n + n + n")
        for tree in parser.parses(sentence):
            assert tokens_of(tree) == tuple(sentence)

    def test_unambiguous_single_parse(self, expr):
        parser = BacktrackingParser(expr)
        # expr is left-recursive; use the booleans-style probe instead
        parser = BacktrackingParser(
            grammar_from_text("E ::= n + E\nE ::= n\nSTART ::= E")
        )
        assert parser.count_parses(toks("n + n")) == 1


class TestKnownLimits:
    def test_left_recursion_not_found(self, ambiguous_expr):
        # E ::= E + E derivations require left recursion; the in-progress
        # guard cuts them, so only right-leaning parses surface — and for
        # the pure left-recursive grammar nothing at all.
        parser = BacktrackingParser(
            grammar_from_text("E ::= E + n\nE ::= n\nSTART ::= E")
        )
        assert parser.recognize(toks("n"))
        assert not parser.recognize(toks("n + n"))  # the documented loss

    def test_left_recursion_risk_reported(self):
        parser = BacktrackingParser(
            grammar_from_text("E ::= E + n\nE ::= n\nSTART ::= E")
        )
        assert parser.left_recursion_risk()

    def test_budget_guard(self):
        # the highly ambiguous right-recursive grammar explodes
        # combinatorially; the budget must turn that into an exception,
        # not a hang ("parsing can be expensive for complex expressions")
        parser = BacktrackingParser(
            grammar_from_text(RIGHT_AMBIGUOUS), max_steps=2_000
        )
        sentence = toks(" ".join(["n"] + ["+ n"] * 30))
        with pytest.raises(BacktrackBudgetExceeded):
            parser.parses(sentence)
