"""LL(1) predictive parsing: table construction, conflicts, parsing."""

import pytest

from repro.baselines.ll1 import LL1Parser, LL1Table, NotLL1Error
from repro.grammar.builders import grammar_from_text
from repro.runtime.errors import ParseError
from repro.runtime.forest import bracketed

from ..conftest import toks

LL1_EXPR = """
    E ::= n R
    R ::= + n R
    R ::=
    START ::= E
"""


class TestTable:
    def test_clean_grammar(self):
        table = LL1Table(grammar_from_text(LL1_EXPR))
        assert table.is_ll1

    def test_left_recursion_conflicts(self):
        table = LL1Table(
            grammar_from_text("E ::= E + n\nE ::= n\nSTART ::= E")
        )
        assert not table.is_ll1

    def test_ambiguity_conflicts(self, ambiguous_expr):
        table = LL1Table(ambiguous_expr)
        assert not table.is_ll1
        assert all(len(c.rules) >= 2 for c in table.conflicts)

    def test_nullable_rule_predicted_on_follow(self):
        table = LL1Table(grammar_from_text(LL1_EXPR))
        from repro.grammar.symbols import END, NonTerminal

        row = table.table[NonTerminal("R")]
        assert END in row  # R ::= ε predicted on end-of-input


class TestParser:
    def test_strict_mode_rejects_conflicts(self, ambiguous_expr):
        with pytest.raises(NotLL1Error):
            LL1Parser(ambiguous_expr)

    def test_lenient_mode_allows(self, ambiguous_expr):
        parser = LL1Parser(ambiguous_expr, strict=False)
        assert parser is not None

    def test_parses(self):
        parser = LL1Parser(grammar_from_text(LL1_EXPR))
        assert parser.recognize(toks("n + n + n"))
        assert not parser.recognize(toks("n + + n"))
        assert not parser.recognize(toks("+"))

    def test_tree(self):
        parser = LL1Parser(grammar_from_text(LL1_EXPR))
        tree = parser.parse(toks("n + n"))
        assert bracketed(tree) == "START(E(n R(+ n R())))"

    def test_trailing_input_rejected(self):
        parser = LL1Parser(grammar_from_text(LL1_EXPR))
        with pytest.raises(ParseError):
            parser.parse(toks("n n"))

    def test_error_positions(self):
        parser = LL1Parser(grammar_from_text(LL1_EXPR))
        with pytest.raises(ParseError) as excinfo:
            parser.parse(toks("n + +"))
        assert excinfo.value.position == 2

    def test_epsilon_heavy_grammar(self, epsilon_grammar):
        parser = LL1Parser(epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b c"))
        assert not parser.recognize(toks("c"))
