"""Earley's algorithm: recognition, epsilon handling, adaptability."""


from repro.baselines.earley import EarleyItem, EarleyParser
from repro.grammar.builders import grammar_from_text
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.lr.items import Item

from ..conftest import toks


class TestRecognition:
    def test_booleans(self, booleans):
        parser = EarleyParser(booleans)
        assert parser.recognize(toks("true or false and true"))
        assert not parser.recognize(toks("true or"))
        assert not parser.recognize(toks("")) is True

    def test_ambiguous(self, ambiguous_expr):
        parser = EarleyParser(ambiguous_expr)
        assert parser.recognize(toks("n + n + n"))
        assert not parser.recognize(toks("n n"))

    def test_left_recursion(self):
        parser = EarleyParser(
            grammar_from_text("E ::= E + n\nE ::= n\nSTART ::= E")
        )
        assert parser.recognize(toks("n + n + n"))

    def test_right_recursion(self):
        parser = EarleyParser(
            grammar_from_text("E ::= n + E\nE ::= n\nSTART ::= E")
        )
        assert parser.recognize(toks("n + n + n"))

    def test_cyclic_grammar(self):
        parser = EarleyParser(
            grammar_from_text("A ::= A\nA ::= a\nSTART ::= A")
        )
        assert parser.recognize(toks("a"))
        assert not parser.recognize(toks("a a"))


class TestEpsilon:
    def test_epsilon_rules(self, epsilon_grammar):
        parser = EarleyParser(epsilon_grammar)
        assert parser.recognize(toks("b"))
        assert parser.recognize(toks("a b c"))
        assert not parser.recognize(toks("a c"))

    def test_nullable_start(self):
        parser = EarleyParser(
            grammar_from_text("S ::=\nS ::= a S\nSTART ::= S")
        )
        assert parser.accepts_empty()
        assert parser.recognize(toks("a a a"))

    def test_hidden_left_recursion(self):
        parser = EarleyParser(
            grammar_from_text(
                """
                S ::= A S b
                S ::= s
                A ::=
                START ::= S
                """
            )
        )
        assert parser.recognize(toks("s b b"))
        assert not parser.recognize(toks("b s"))

    def test_deeply_nullable_chain(self):
        parser = EarleyParser(
            grammar_from_text(
                """
                S ::= A B C x
                A ::=
                B ::= A A
                C ::= B
                START ::= S
                """
            )
        )
        assert parser.recognize(toks("x"))


class TestAdaptability:
    def test_no_generation_phase_grammar_edits_are_free(self, booleans):
        parser = EarleyParser(booleans)
        assert not parser.recognize(toks("unknown"))
        booleans.add_rule(
            Rule(NonTerminal("B"), [Terminal("unknown")])
        )
        assert parser.recognize(toks("unknown"))
        booleans.delete_rule(Rule(NonTerminal("B"), [Terminal("unknown")]))
        assert not parser.recognize(toks("unknown"))


class TestChart:
    def test_chart_has_one_set_per_position(self, booleans):
        parser = EarleyParser(booleans)
        chart = parser.chart(toks("true or false"))
        assert len(chart) == 4

    def test_chart_size_recorded(self, booleans):
        parser = EarleyParser(booleans)
        parser.recognize(toks("true or false"))
        assert parser.last_chart_size > 0

    def test_items_are_value_objects(self, booleans):
        rule = next(iter(booleans.rules))
        a = EarleyItem(Item(rule, 0), 0)
        b = EarleyItem(Item(rule, 0), 0)
        assert a == b and hash(a) == hash(b)
        assert a != EarleyItem(Item(rule, 0), 1)
