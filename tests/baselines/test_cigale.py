"""The Cigale-style trie parser: sharing, extension, composition."""

import pytest

from repro.baselines.cigale import CigaleParser
from repro.grammar.builders import grammar_from_text
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.forest import bracketed

from ..conftest import toks

E = NonTerminal("E")
n = Terminal("n")
plus = Terminal("+")


class TestParsing:
    def test_operators(self, ambiguous_expr):
        parser = CigaleParser.from_grammar(ambiguous_expr)
        assert parser.recognize(toks("n"))
        assert parser.recognize(toks("n + n + n"))
        assert not parser.recognize(toks("n +"))
        assert not parser.recognize(toks("+ n"))

    def test_booleans(self, booleans):
        parser = CigaleParser.from_grammar(booleans)
        assert parser.recognize(toks("true"))
        assert parser.recognize(toks("true or false and true"))
        assert not parser.recognize(toks("or"))

    def test_exactly_one_parse_shape(self, ambiguous_expr):
        parser = CigaleParser.from_grammar(ambiguous_expr)
        tree = parser.parse(toks("n + n + n"))
        # greedy traversal commits to exactly one parse; the recursive
        # operand parse runs its own extension loop first, so the shape is
        # right-associated
        assert bracketed(tree) == "START(E(E(n) + E(E(n) + E(n))))"

    def test_no_start_symbol_raises(self):
        parser = CigaleParser()
        with pytest.raises(ValueError):
            parser.parse(toks("n"))


class TestIncrementalExtension:
    def test_add_rule_takes_effect_immediately(self, ambiguous_expr):
        parser = CigaleParser.from_grammar(ambiguous_expr)
        assert not parser.recognize(toks("n * n"))
        parser.add_rule(Rule(E, [E, Terminal("*"), E]))
        assert parser.recognize(toks("n * n"))

    def test_trie_shares_prefixes(self):
        parser = CigaleParser()
        parser.add_rule(Rule(E, [n, plus, n]))
        size_before = parser.trie_size()
        parser.add_rule(Rule(E, [n, plus, plus]))  # shares 'n +' prefix
        grown = parser.trie_size() - size_before
        assert grown == 1  # only one fresh node


class TestModularComposition:
    def test_merge_combines_languages(self):
        numbers = CigaleParser(
            grammar_from_text("E ::= n\nSTART ::= E").rules,
            start=NonTerminal("START"),
        )
        sums = CigaleParser(
            grammar_from_text("E ::= E + E\nSTART ::= E").rules
        )
        assert not numbers.recognize(toks("n + n"))
        numbers.merge(sums)
        assert numbers.recognize(toks("n + n"))

    def test_merge_is_idempotent(self, ambiguous_expr):
        a = CigaleParser.from_grammar(ambiguous_expr)
        b = CigaleParser.from_grammar(ambiguous_expr)
        size = a.trie_size()
        a.merge(b)
        assert a.trie_size() == size


class TestKnownLimits:
    def test_no_backtracking_means_greedy_failures(self):
        # 'a b' vs 'a' — after greedily taking 'a b', input 'a b c' with a
        # rule needing 'a' then 'b c' cannot be re-split
        grammar = grammar_from_text(
            """
            S ::= A c
            A ::= a b
            A ::= a
            START ::= S
            """
        )
        parser = CigaleParser.from_grammar(grammar)
        # greedy: A eats 'a b', then 'c' matches: this one works
        assert parser.recognize(toks("a b c"))
        # but the committed choice cannot handle the other split
        grammar2 = grammar_from_text(
            """
            S ::= A b c
            A ::= a b
            A ::= a
            START ::= S
            """
        )
        parser2 = CigaleParser.from_grammar(grammar2)
        assert not parser2.recognize(toks("a b c"))  # the documented loss

    def test_single_parse_only(self, ambiguous_expr):
        parser = CigaleParser.from_grammar(ambiguous_expr)
        # ambiguity is not detected — exactly one tree comes back
        assert parser.parse(toks("n + n + n")) is not None
