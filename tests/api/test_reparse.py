"""``Language.reparse`` and the Engine reparse protocol."""

from __future__ import annotations

import pytest

from repro.api import Language, engines
from repro.runtime.errors import ParseError

GRAMMAR = """
    E ::= a
    E ::= b
    E ::= E + a
    E ::= E + b
    START ::= E
"""


@pytest.fixture()
def language():
    return Language.from_text(GRAMMAR)


class TestCheckpointedParse:
    def test_checkpoint_carries_handle_and_reuse(self, language):
        outcome = language.parse("a + a", checkpoint=True)
        assert outcome.accepted
        assert outcome.incremental is not None
        assert outcome.reuse["total_tokens"] == 3
        assert outcome.terminals and outcome.terminals[0].name == "a"

    def test_plain_parse_has_no_handle(self, language):
        outcome = language.parse("a + a")
        assert outcome.incremental is None
        assert outcome.reuse is None

    def test_unsupported_engine_checkpoint_degrades_gracefully(self, language):
        # earley builds no trees, so the checkpointed call goes through
        # recognize(); the checkpoint itself degrades to no handle.
        outcome = language.recognize("a + a", engine="earley", checkpoint=True)
        assert outcome.accepted
        assert outcome.incremental is None

    def test_trace_and_checkpoint_are_mutually_exclusive(self, language):
        from repro.runtime.trace import Trace

        with pytest.raises(ValueError, match="mutually exclusive"):
            language.parse("a + a", trace=Trace(), checkpoint=True)


class TestReparse:
    def test_equivalent_to_scratch_parse(self, language):
        base = language.parse("a + a + b", checkpoint=True)
        edited = language.reparse(base, 2, 3, "b")
        scratch = language.parse("a + b + b")
        assert edited.accepted and scratch.accepted
        assert edited.brackets() == scratch.brackets()
        assert edited.engine == scratch.engine
        assert edited.reuse["reused_prefix"] == 2

    def test_replacement_accepts_string_and_sequences(self, language):
        base = language.parse("a + a", checkpoint=True)
        by_text = language.reparse(base, 2, 3, "b")
        rebase = language.parse("a + a", checkpoint=True)
        by_list = language.reparse(rebase, 2, 3, ["b"])
        assert by_text.accepted and by_list.accepted
        assert by_text.brackets() == by_list.brackets()

    def test_deletion_and_insertion(self, language):
        base = language.parse("a + a + b", checkpoint=True)
        deleted = language.reparse(base, 1, 3)
        assert deleted.accepted
        assert [t.name for t in deleted.terminals] == ["a", "+", "b"]
        inserted = language.reparse(deleted, 3, 3, "+ a")
        assert inserted.accepted
        assert [t.name for t in inserted.terminals] == ["a", "+", "b", "+", "a"]

    def test_unknown_explicit_engine_raises(self, language):
        base = language.parse("a + a", checkpoint=True)
        with pytest.raises(ValueError, match="unknown engine"):
            language.reparse(base, 2, 3, "b", engine="comipled")

    def test_out_of_range_edit_raises(self, language):
        base = language.parse("a + a", checkpoint=True)
        with pytest.raises(ParseError):
            language.reparse(base, 0, 99)
        with pytest.raises(ParseError):
            language.reparse(base, 4, 2)

    def test_rejection_diagnostics_match_scratch(self, language):
        base = language.parse("a + a", checkpoint=True)
        edited = language.reparse(base, 1, 2, "b")  # "a b a" is invalid
        scratch = language.parse(["a", "b", "a"])
        assert not edited.accepted and not scratch.accepted
        left = edited.diagnostic.to_payload()
        right = scratch.diagnostic.to_payload()
        assert left["token_index"] == right["token_index"]
        assert left["expected"] == right["expected"]

    def test_reuse_survives_payload_round_trip(self, language):
        base = language.parse("a + a", checkpoint=True)
        edited = language.reparse(base, 2, 3, "b")
        payload = edited.to_payload()
        assert payload["reuse"]["reused_prefix"] == 2

    def test_plain_outcome_falls_back(self, language):
        """A base without checkpoints still re-parses correctly."""
        base = language.parse("a + a")
        edited = language.reparse(base, 2, 3, "b")
        assert edited.accepted
        assert edited.reuse["fallback"] == "no-checkpoint"

    def test_engine_override_does_not_reuse_foreign_checkpoints(self, language):
        base = language.parse("a + a", checkpoint=True)
        edited = language.reparse(base, 2, 3, "b", engine="lazy")
        scratch = language.parse("a + b", engine="lazy")
        assert edited.engine == "lazy"
        assert edited.brackets() == scratch.brackets()
        assert edited.reuse["fallback"] == "no-checkpoint"

    def test_recognition_base_reparses_in_recognition_mode(self, language):
        base = language.recognize("a + a + b", checkpoint=True)
        edited = language.reparse(base, 2, 3, "b")
        assert edited.accepted
        assert not edited.trees_built

    def test_grammar_edit_between_parses_falls_back(self, language):
        base = language.parse("a + a", checkpoint=True)
        language.add_rule("E ::= E + c")
        edited = language.reparse(base, 2, 3, "c")
        scratch = language.parse("a + c")
        assert edited.accepted and scratch.accepted
        assert edited.reuse["fallback"] == "grammar-modified"

    @pytest.mark.parametrize(
        "name",
        [
            name
            for name, record in engines(detail=True).items()
            if record["supports_trees"]
        ],
    )
    def test_every_tree_engine_answers_reparse(self, language, name):
        base = language.parse("a + a + b", checkpoint=True, engine=name)
        edited = language.reparse(base, 2, 3, "b")
        scratch = language.parse("a + b + b", engine=name)
        assert edited.accepted == scratch.accepted is True
        assert edited.brackets() == scratch.brackets()

    def test_recognize_only_engine_answers_reparse(self, language):
        # A checkpoint taken in recognize mode keeps reparse in recognize
        # mode, so tree-less engines still answer edits.
        base = language.recognize("a + a + b", checkpoint=True, engine="earley")
        edited = language.reparse(base, 2, 3, "b")
        scratch = language.recognize("a + b + b", engine="earley")
        assert edited.accepted == scratch.accepted is True


class TestDenseEngineInvalidation:
    def test_dense_checkpoints_die_with_the_table(self, language):
        base = language.parse("a + a", checkpoint=True, engine="dense")
        assert base.accepted
        language.add_rule("E ::= E + c")
        edited = language.reparse(base, 2, 3, "c")
        scratch = language.parse("a + c", engine="dense")
        assert edited.accepted and scratch.accepted
        # The dense control was rebuilt: the old checkpoint is unusable
        # (whatever the reason string, reuse must not have happened).
        assert edited.reuse["fallback"] is not None
