"""The Language front door: construction, lexing, parsing, editing."""

import pytest

from repro import IPG, Language
from repro.api import ScannerTokenizer, WhitespaceTokenizer
from repro.grammar.grammar import GrammarError
from repro.sdf.corpus import EXP_SDF
from tests.conftest import BOOLEANS, EXPR


class TestConstruction:
    def test_from_text(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.parse("true or false").accepted

    def test_from_rules(self):
        from repro.grammar.builders import rules_from_text

        lang = Language.from_rules(rules_from_text(BOOLEANS))
        assert lang.parse("true and true").accepted

    def test_from_sdf_parses_raw_text_end_to_end(self):
        # The acceptance criterion: no manual lexing anywhere.
        outcome = Language.from_sdf(EXP_SDF).parse("true and not false")
        assert outcome.accepted
        assert outcome.tree is not None

    def test_from_sdf_keeps_the_definition(self):
        lang = Language.from_sdf(EXP_SDF)
        assert lang.definition is not None
        assert lang.definition.name == "exp"

    def test_default_engine_must_exist(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Language.from_text(BOOLEANS, engine="turbo")

    def test_empty_language(self):
        lang = Language()
        assert not lang.parse("anything").accepted


class TestOutcome:
    def test_outcome_fields(self):
        lang = Language.from_text(BOOLEANS)
        outcome = lang.parse("true and false or true")
        assert outcome.accepted and bool(outcome)
        assert outcome.engine == "compiled"
        assert outcome.elapsed >= 0
        assert outcome.ambiguity == len(outcome.trees) == 2
        assert outcome.is_ambiguous
        assert outcome.stats["shifts"] > 0
        assert len(outcome.lexemes) == 5

    def test_recognize_builds_no_trees(self):
        lang = Language.from_text(BOOLEANS)
        outcome = lang.recognize("true")
        assert outcome.accepted
        assert outcome.trees == ()
        assert outcome.trees_built is False

    def test_payload_shape(self):
        lang = Language.from_text(BOOLEANS)
        ok = lang.parse("true").to_payload()
        assert ok == {
            "accepted": True,
            "trees": ["START(B(true))"],
            "engine": "compiled",
            "ambiguity": {"tree_count": 1, "enumerated": 1, "truncated": False},
        }
        bad = lang.parse("true or").to_payload()
        assert bad["accepted"] is False
        assert bad["diagnostics"]["expected"] == ["false", "true"]

    def test_trace_passthrough(self):
        from repro.runtime.trace import Trace

        lang = Language.from_text(BOOLEANS)
        trace = Trace()
        assert lang.parse("true", trace=trace).accepted
        assert len(trace) > 0

    @pytest.mark.parametrize("engine", ["lazy", "compiled", "dense", "gss"])
    def test_trace_honored_by_every_pool_backed_engine(self, engine):
        from repro.runtime.trace import Trace

        lang = Language.from_text(BOOLEANS)
        trace = Trace()
        assert lang.parse("true or false", engine=engine, trace=trace).accepted
        assert len(trace) > 0, engine


class TestEditing:
    def test_add_and_delete_rule_text(self):
        lang = Language.from_text(BOOLEANS)
        version = lang.version
        assert lang.add_rule("B ::= maybe")
        assert lang.version == version + 1
        assert lang.parse("maybe or true").accepted
        assert lang.delete_rule("B ::= maybe")
        assert not lang.parse("maybe").accepted

    def test_sorts_support_forward_references(self):
        lang = Language()
        lang.add_rule("CMD ::= turn N", sorts={"N"})
        lang.add_rule("N ::= 1")
        lang.add_rule("START ::= CMD")
        assert lang.parse("turn 1").accepted

    def test_mid_body_epsilon_rejected(self):
        lang = Language.from_text(BOOLEANS)
        with pytest.raises(GrammarError):
            lang.add_rule("B ::= true ε false")

    def test_whole_body_epsilon_is_the_empty_rule(self):
        lang = Language.from_text(BOOLEANS)
        lang.add_rule("B ::= ε")
        assert lang.parse([]).accepted

    def test_collect_garbage(self):
        lang = Language.from_text(BOOLEANS)
        lang.parse("true and true")
        lang.add_rule("B ::= B xor B")
        lang.parse("true xor true")
        assert lang.collect_garbage(force_sweep=True) >= 0
        assert lang.parse("true xor false").accepted


class TestTokenizerIntegration:
    def test_whitespace_is_the_default(self):
        assert isinstance(Language().tokenizer, WhitespaceTokenizer)

    def test_grammar_literal_scanner(self):
        lang = Language.from_text(EXPR)
        lang.use_tokenizer(ScannerTokenizer.from_grammar(lang.grammar))
        assert lang.parse("(n+n)*n").accepted
        assert lang.parse("( n + n ) * n").accepted  # layout skipped

    def test_grammar_literal_scanner_follows_edits(self):
        lang = Language.from_text(EXPR)
        lang.use_tokenizer(ScannerTokenizer.from_grammar(lang.grammar))
        lang.add_rule("F ::= F ! F")
        assert lang.parse("n!n").accepted
        lang.delete_rule("F ::= F ! F")
        assert lang.parse("n!n").diagnostic.kind == "lexical"

    def test_empty_text_is_the_empty_sentence(self):
        lang = Language.from_text(BOOLEANS)
        # With a real tokenizer "" is unambiguous: zero tokens.
        assert not lang.parse("").accepted
        lang.add_rule("B ::= ε")
        assert lang.parse("").accepted


class TestIpgFacade:
    """IPG delegates to Language; both views stay consistent."""

    def test_shared_infrastructure(self):
        ipg = IPG.from_text(BOOLEANS)
        assert ipg.language.grammar is ipg.grammar
        assert ipg.language.generator is ipg.generator
        assert ipg.language.control is ipg.control

    def test_edit_through_either_view(self):
        ipg = IPG.from_text(BOOLEANS)
        ipg.add_rule("B ::= maybe")
        assert ipg.language.parse("maybe").accepted
        ipg.language.add_rule("B ::= surely")
        assert ipg.recognize("surely or maybe")

    def test_facade_keeps_parseresult_shape(self):
        result = IPG.from_text(BOOLEANS).parse("true or false")
        assert result.accepted
        assert len(result.trees) == 1
        assert result.stats.sweeps > 0
