"""The tokenizer protocol: whitespace, SDF scanner, grammar-literal scanner."""

import pytest

from repro.api import ScannerTokenizer, ScanError, WhitespaceTokenizer
from repro.grammar.builders import grammar_from_text
from repro.sdf.corpus import EXAM_SDF, EXP_SDF
from repro.sdf.parser import parse_sdf
from tests.conftest import EXPR


class TestWhitespaceTokenizer:
    def test_offsets(self):
        lexemes = WhitespaceTokenizer().tokenize("true  and\nfalse")
        assert [(lex.text, lex.position) for lex in lexemes] == [
            ("true", 0),
            ("and", 6),
            ("false", 10),
        ]

    def test_terminals(self):
        tokenizer = WhitespaceTokenizer()
        assert [t.name for t in tokenizer.terminals("a b a")] == ["a", "b", "a"]

    def test_empty_and_blank_text(self):
        tokenizer = WhitespaceTokenizer()
        assert tokenizer.tokenize("") == []
        assert tokenizer.tokenize("  \t\n ") == []


class TestSdfScannerTokenizer:
    def test_lexical_sorts_and_literals(self):
        tokenizer = ScannerTokenizer.from_sdf(parse_sdf(EXAM_SDF))
        names = [t.name for t in tokenizer.terminals("exam Algebra")]
        assert names == ["exam", "WORD"]  # keyword reserved against WORD

    def test_positions_survive_layout(self):
        tokenizer = ScannerTokenizer.from_sdf(parse_sdf(EXP_SDF))
        lexemes = tokenizer.tokenize("true  and false")
        assert [lex.position for lex in lexemes] == [0, 6, 10]

    def test_definition_without_layout_gets_implicit_whitespace(self):
        tokenizer = ScannerTokenizer.from_sdf(parse_sdf(EXP_SDF))
        assert [t.name for t in tokenizer.terminals("true and\nfalse")] == [
            "true",
            "and",
            "false",
        ]

    def test_scan_error_carries_position(self):
        tokenizer = ScannerTokenizer.from_sdf(parse_sdf(EXP_SDF))
        with pytest.raises(ScanError) as info:
            tokenizer.tokenize("true # false")
        assert info.value.position == 5


class TestGrammarLiteralScanner:
    def test_punctuation_needs_no_blanks(self):
        grammar = grammar_from_text(EXPR)
        tokenizer = ScannerTokenizer.from_grammar(grammar)
        assert [t.name for t in tokenizer.terminals("(n+n)*n")] == [
            "(", "n", "+", "n", ")", "*", "n",
        ]

    def test_longest_match_wins(self):
        grammar = grammar_from_text(
            "A ::= if\nA ::= iffy\nSTART ::= A"
        )
        tokenizer = ScannerTokenizer.from_grammar(grammar)
        assert [t.name for t in tokenizer.terminals("iffy")] == ["iffy"]
        assert [t.name for t in tokenizer.terminals("if")] == ["if"]

    def test_follows_grammar_edits(self):
        grammar = grammar_from_text(EXPR)
        tokenizer = ScannerTokenizer.from_grammar(grammar)
        with pytest.raises(ScanError):
            tokenizer.tokenize("n?n")
        rule = _rule("F ::= n ? n", grammar)
        grammar.add_rule(rule)
        assert [t.name for t in tokenizer.terminals("n?n")] == ["n", "?", "n"]
        grammar.delete_rule(rule)
        with pytest.raises(ScanError):
            tokenizer.tokenize("n?n")

    def test_detach_stops_following(self):
        grammar = grammar_from_text(EXPR)
        tokenizer = ScannerTokenizer.from_grammar(grammar)
        tokenizer.close()
        _add_terminal(grammar, "?")
        with pytest.raises(ScanError):
            tokenizer.tokenize("n?n")


def _rule(text, grammar):
    from repro.grammar.builders import rule_from_text

    return rule_from_text(text, {nt.name for nt in grammar.nonterminals})


def _add_terminal(grammar, mark):
    grammar.add_rule(_rule(f"F ::= n {mark} n", grammar))
