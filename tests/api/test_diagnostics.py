"""Rejection diagnostics: token position, line/column, expected sets.

The expected set is read off the ACTION rows of the states the parser
died in, so it must be exactly the set of terminals that *would* have
been accepted — and it must track incremental grammar edits: ADD-RULE
makes new terminals expected, DELETE-RULE retracts them (MODIFY
un-expands the affected states; the probe re-expands against the edited
grammar).
"""

import pytest

from repro.api import Language, engines
from repro.sdf.corpus import EXP_SDF, sdf_grammar
from repro.sdf.lexer import terminal_stream
from tests.conftest import BOOLEANS

#: engines whose rejections carry a position (all of them).
ALL_ENGINES = ("lazy", "compiled", "dense", "gss", "earley")


@pytest.fixture()
def booleans_lang():
    return Language.from_text(BOOLEANS)


class TestBooleansExpectedSets:
    def test_unexpected_end_of_input(self, booleans_lang):
        outcome = booleans_lang.parse("true and")
        diag = outcome.diagnostic
        assert not outcome.accepted
        assert diag is not None
        assert diag.token_index == 2  # == input length: ended too early
        assert diag.token is None
        assert diag.message == "unexpected end of input"
        assert set(diag.expected) == {"true", "false"}

    def test_unexpected_token_mid_input(self, booleans_lang):
        outcome = booleans_lang.parse("true banana true")
        diag = outcome.diagnostic
        assert diag.token_index == 1
        assert diag.token == "banana"
        # After one complete B only a connective (or the end) may follow.
        assert set(diag.expected) == {"and", "or", "$"}

    def test_line_and_column_from_offsets(self, booleans_lang):
        outcome = booleans_lang.parse("true and\nfalse or or")
        diag = outcome.diagnostic
        assert diag.line == 2
        assert diag.column == 10
        assert diag.token == "or"

    def test_expected_set_agrees_across_engines(self, booleans_lang):
        for engine in ALL_ENGINES:
            diag = booleans_lang.recognize("true and", engine=engine).diagnostic
            assert diag is not None, engine
            assert set(diag.expected) == {"true", "false"}, engine
            assert diag.token_index == 2, engine

    def test_accepted_outcome_has_no_diagnostic(self, booleans_lang):
        assert booleans_lang.parse("true or false").diagnostic is None


class TestExpectedSetsTrackModify:
    def test_add_rule_extends_expected_set(self, booleans_lang):
        before = booleans_lang.parse("true and").diagnostic
        assert set(before.expected) == {"true", "false"}
        booleans_lang.add_rule("B ::= not B")
        after = booleans_lang.parse("true and").diagnostic
        assert set(after.expected) == {"true", "false", "not"}

    def test_delete_rule_shrinks_expected_set(self, booleans_lang):
        booleans_lang.add_rule("B ::= not B")
        booleans_lang.delete_rule("B ::= false")
        diag = booleans_lang.parse("true and").diagnostic
        assert set(diag.expected) == {"true", "not"}

    def test_connective_set_tracks_edits(self, booleans_lang):
        booleans_lang.add_rule("B ::= B xor B")
        diag = booleans_lang.parse("true banana").diagnostic
        assert set(diag.expected) == {"and", "or", "xor", "$"}
        booleans_lang.delete_rule("B ::= B xor B")
        diag = booleans_lang.parse("true banana").diagnostic
        assert set(diag.expected) == {"and", "or", "$"}

    def test_tracking_holds_for_every_engine(self, booleans_lang):
        booleans_lang.add_rule("B ::= not B")
        for engine in ALL_ENGINES:
            diag = booleans_lang.recognize("true and", engine=engine).diagnostic
            assert set(diag.expected) == {"true", "false", "not"}, engine
        booleans_lang.delete_rule("B ::= not B")
        for engine in ALL_ENGINES:
            diag = booleans_lang.recognize("true and", engine=engine).diagnostic
            assert set(diag.expected) == {"true", "false"}, engine


class TestSdfCorpusExpectedSets:
    """The §7 SDF grammar: diagnostics over a realistic-size automaton."""

    @pytest.fixture()
    def sdf_lang(self):
        return Language(sdf_grammar())

    def test_truncated_module_header(self, sdf_lang):
        # "module x" and then nothing: a section keyword (or module end)
        # must follow.
        tokens = terminal_stream("module x")
        outcome = sdf_lang.parse(tokens)
        diag = outcome.diagnostic
        assert not outcome.accepted
        assert diag.token_index == len(tokens)
        assert "begin" in diag.expected

    def test_wrong_token_after_sorts(self, sdf_lang):
        tokens = terminal_stream("module x begin context-free syntax sorts ->")
        diag = sdf_lang.parse(tokens).diagnostic
        assert diag.token == "->"
        assert "ID" in diag.expected

    def test_expected_sets_agree_across_engines_on_sdf(self, sdf_lang):
        tokens = terminal_stream("module x begin")
        reference = None
        for engine in ALL_ENGINES:
            diag = sdf_lang.recognize(tokens, engine=engine).diagnostic
            assert diag is not None, engine
            expected = set(diag.expected)
            if reference is None:
                reference = expected
            assert expected == reference, engine
        assert reference  # non-empty

    def test_sdf_expected_set_tracks_modification(self, sdf_lang):
        from repro.sdf.corpus import modification_rule

        tokens = terminal_stream("module x begin context-free syntax functions (")
        before = sdf_lang.parse(tokens).diagnostic
        # The §7 modification adds "(" CF-ELEM+ ")?" -> CF-ELEM; before it,
        # "(" cannot start a CF-ELEM.
        rule = modification_rule(sdf_lang.grammar)
        sdf_lang.add_rule(rule)
        after = sdf_lang.parse(tokens).diagnostic
        assert before is not None and after is not None
        assert set(before.expected) != set(after.expected) or (
            before.token_index != after.token_index
        )


class TestFromSdfDiagnostics:
    """End-to-end: raw text in, positioned diagnostics out."""

    @pytest.fixture()
    def exp(self):
        return Language.from_sdf(EXP_SDF)

    def test_raw_text_round_trip(self, exp):
        assert exp.parse("true and not false").accepted
        assert not exp.parse("true and and").accepted

    def test_positioned_syntax_error(self, exp):
        diag = exp.parse("true and\nnot and").diagnostic
        assert diag.kind == "syntax"
        assert diag.line == 2
        assert diag.column == 5
        assert diag.token == "and"
        assert set(diag.expected) == {"true", "false", "not", "neg"}

    def test_lexical_error_is_a_diagnostic_not_an_exception(self, exp):
        outcome = exp.parse("true @@ false")
        assert not outcome.accepted
        assert outcome.diagnostic.kind == "lexical"
        assert outcome.diagnostic.line == 1
        assert outcome.diagnostic.column == 6  # the first '@' (offset 5)
