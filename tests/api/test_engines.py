"""The engine registry and the cross-engine differential suite.

Every registered engine must agree on acceptance over one shared corpus —
including after incremental edits — and the tree-building engines must
agree on the exact derivations.  This is the contract that lets callers
treat ``engine="..."`` as a pure performance knob.
"""

import pytest

from repro.api import Language, create_engine, engine_descriptions, engines
from tests.conftest import AMBIGUOUS_EXPR, BOOLEANS, EPSILON, EXPR

ALL_ENGINES = ("lazy", "compiled", "dense", "gss", "earley")

#: engines whose ``parse`` builds derivation trees
TREE_ENGINES = ("lazy", "compiled", "dense", "gss")

#: (grammar text, accepted sentences, rejected sentences)
CORPUS = [
    (
        BOOLEANS,
        ["true", "true or false", "true and false or true"],
        ["or", "true and", "banana", "true true"],
    ),
    (
        EXPR,
        ["n", "n + n * n", "( n + n ) * n"],
        ["n +", "( n", "+ n", "n n"],
    ),
    (
        AMBIGUOUS_EXPR,
        ["n", "n + n", "n + n + n + n"],
        ["+", "n n", "n + + n"],
    ),
    (
        EPSILON,
        ["b", "a b", "b c", "a b c"],
        ["a", "c b", "a a b"],
    ),
]


class TestRegistry:
    def test_five_engines_registered(self):
        assert engines() == ALL_ENGINES

    def test_descriptions_cover_every_engine(self):
        described = engine_descriptions()
        for name in engines():
            assert described[name]

    def test_unknown_engine_rejected(self):
        lang = Language.from_text(BOOLEANS)
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("yacc++", lang)
        with pytest.raises(ValueError, match="unknown engine"):
            lang.parse("true", engine="yacc++")

    def test_engine_instances_are_cached(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.engine("gss") is lang.engine("gss")
        assert lang.engine() is lang.engine("compiled")


class TestDifferential:
    @pytest.mark.parametrize("grammar_text,accepted,rejected", CORPUS)
    def test_acceptance_agrees_across_registry(
        self, grammar_text, accepted, rejected
    ):
        lang = Language.from_text(grammar_text)
        for sentence in accepted:
            verdicts = {
                name: lang.recognize(sentence, engine=name).accepted
                for name in engines()
            }
            assert all(verdicts.values()), (sentence, verdicts)
        for sentence in rejected:
            verdicts = {
                name: lang.recognize(sentence, engine=name).accepted
                for name in engines()
            }
            assert not any(verdicts.values()), (sentence, verdicts)

    @pytest.mark.parametrize("grammar_text,accepted,rejected", CORPUS)
    def test_trees_agree_across_tree_engines(
        self, grammar_text, accepted, rejected
    ):
        lang = Language.from_text(grammar_text)
        for sentence in accepted:
            brackets = {
                name: lang.parse(sentence, engine=name).brackets()
                for name in TREE_ENGINES
            }
            reference = brackets[TREE_ENGINES[0]]
            assert reference, sentence
            assert all(b == reference for b in brackets.values()), (
                sentence,
                brackets,
            )

    def test_agreement_survives_interleaved_edits(self):
        lang = Language.from_text(BOOLEANS)
        script = [
            ("add", "B ::= B xor B", "true xor false", True),
            ("add", "B ::= not B", "not true xor not false", True),
            ("delete", "B ::= B xor B", "true xor false", False),
            ("add", "B ::= maybe", "not maybe or true", True),
            ("delete", "B ::= not B", "not true", False),
        ]
        for action, rule, sentence, should_accept in script:
            if action == "add":
                assert lang.add_rule(rule)
            else:
                assert lang.delete_rule(rule)
            for name in engines():
                outcome = lang.recognize(sentence, engine=name)
                assert outcome.accepted is should_accept, (
                    name,
                    sentence,
                    outcome,
                )

    def test_ambiguity_counts_agree(self):
        lang = Language.from_text(AMBIGUOUS_EXPR)
        # Catalan numbers: 1, 2, 5 derivations.
        for sentence, count in [("n + n", 1), ("n + n + n", 2),
                                ("n + n + n + n", 5)]:
            for name in TREE_ENGINES:
                assert lang.parse(sentence, engine=name).ambiguity == count


class TestEngineBehaviour:
    def test_earley_reports_trees_not_built(self):
        lang = Language.from_text(BOOLEANS)
        outcome = lang.parse("true", engine="earley")
        assert outcome.accepted
        assert outcome.trees == ()
        assert outcome.trees_built is False

    def test_dense_engine_rebuilds_after_edit(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.recognize("true", engine="dense").accepted
        dense = lang.engine("dense")
        assert dense._pool is not None
        lang.add_rule("B ::= maybe")
        assert dense._pool is None  # invalidated by MODIFY
        assert lang.recognize("maybe or true", engine="dense").accepted

    def test_lazy_and_compiled_share_one_graph(self):
        lang = Language.from_text(BOOLEANS)
        lang.recognize("true or false", engine="lazy")
        states_after_lazy = len(lang.graph)
        lang.recognize("true or false", engine="compiled")
        assert len(lang.graph) == states_after_lazy

    def test_prepare_builds_dense_table_up_front(self):
        lang = Language.from_text(EXPR)
        dense = lang.engine("dense")
        assert dense._pool is None
        dense.prepare()
        assert dense._pool is not None

    def test_explicit_token_sequences_accepted(self, toks):
        lang = Language.from_text(BOOLEANS)
        for name in engines():
            assert lang.recognize(toks("true and false"), engine=name).accepted
