"""The engine registry and the cross-engine differential suite.

Every registered engine must agree on acceptance over one shared corpus —
including after incremental edits — and the tree-building engines must
agree on the exact derivations.  This is the contract that lets callers
treat ``engine="..."`` as a pure performance knob.
"""

import pytest

from repro.api import Language, create_engine, engine_descriptions, engines
from tests.conftest import AMBIGUOUS_EXPR, BOOLEANS, EPSILON, EXPR

ALL_ENGINES = ("lazy", "compiled", "dense", "gss", "earley")

#: engines whose ``parse`` builds derivation trees
TREE_ENGINES = ("lazy", "compiled", "dense", "gss")

#: (grammar text, accepted sentences, rejected sentences)
CORPUS = [
    (
        BOOLEANS,
        ["true", "true or false", "true and false or true"],
        ["or", "true and", "banana", "true true"],
    ),
    (
        EXPR,
        ["n", "n + n * n", "( n + n ) * n"],
        ["n +", "( n", "+ n", "n n"],
    ),
    (
        AMBIGUOUS_EXPR,
        ["n", "n + n", "n + n + n + n"],
        ["+", "n n", "n + + n"],
    ),
    (
        EPSILON,
        ["b", "a b", "b c", "a b c"],
        ["a", "c b", "a a b"],
    ),
]


class TestRegistry:
    def test_five_engines_registered(self):
        assert engines() == ALL_ENGINES

    def test_descriptions_cover_every_engine(self):
        described = engine_descriptions()
        for name in engines():
            assert described[name]

    def test_unknown_engine_rejected(self):
        lang = Language.from_text(BOOLEANS)
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("yacc++", lang)
        with pytest.raises(ValueError, match="unknown engine"):
            lang.parse("true", engine="yacc++")

    def test_engine_instances_are_cached(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.engine("gss") is lang.engine("gss")
        assert lang.engine() is lang.engine("compiled")

    def test_detail_reports_capability_flags(self):
        detail = engines(detail=True)
        assert tuple(detail) == ALL_ENGINES
        for name in TREE_ENGINES:
            assert detail[name]["supports_trees"] is True
            assert detail[name]["supports_ambiguity"] is True
        assert detail["earley"]["supports_trees"] is False
        assert detail["earley"]["supports_ambiguity"] is False
        # The checkpoint family answers reparse natively; the others fall
        # back to a full parse through Language.reparse.
        for name in ("lazy", "compiled", "dense"):
            assert detail[name]["supports_reparse"] is True
        assert detail["gss"]["supports_reparse"] is False
        for record in detail.values():
            assert record["summary"]

    def test_provides_trees_is_a_deprecated_alias(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.engine("gss").provides_trees is True
        assert lang.engine("earley").provides_trees is False


class TestDifferential:
    @pytest.mark.parametrize("grammar_text,accepted,rejected", CORPUS)
    def test_acceptance_agrees_across_registry(
        self, grammar_text, accepted, rejected
    ):
        lang = Language.from_text(grammar_text)
        for sentence in accepted:
            verdicts = {
                name: lang.recognize(sentence, engine=name).accepted
                for name in engines()
            }
            assert all(verdicts.values()), (sentence, verdicts)
        for sentence in rejected:
            verdicts = {
                name: lang.recognize(sentence, engine=name).accepted
                for name in engines()
            }
            assert not any(verdicts.values()), (sentence, verdicts)

    @pytest.mark.parametrize("grammar_text,accepted,rejected", CORPUS)
    def test_trees_agree_across_tree_engines(
        self, grammar_text, accepted, rejected
    ):
        lang = Language.from_text(grammar_text)
        for sentence in accepted:
            brackets = {
                name: lang.parse(sentence, engine=name).brackets()
                for name in TREE_ENGINES
            }
            reference = brackets[TREE_ENGINES[0]]
            assert reference, sentence
            assert all(b == reference for b in brackets.values()), (
                sentence,
                brackets,
            )

    def test_agreement_survives_interleaved_edits(self):
        lang = Language.from_text(BOOLEANS)
        script = [
            ("add", "B ::= B xor B", "true xor false", True),
            ("add", "B ::= not B", "not true xor not false", True),
            ("delete", "B ::= B xor B", "true xor false", False),
            ("add", "B ::= maybe", "not maybe or true", True),
            ("delete", "B ::= not B", "not true", False),
        ]
        for action, rule, sentence, should_accept in script:
            if action == "add":
                assert lang.add_rule(rule)
            else:
                assert lang.delete_rule(rule)
            for name in engines():
                outcome = lang.recognize(sentence, engine=name)
                assert outcome.accepted is should_accept, (
                    name,
                    sentence,
                    outcome,
                )

    def test_ambiguity_counts_agree(self):
        lang = Language.from_text(AMBIGUOUS_EXPR)
        # Catalan numbers: 1, 2, 5 derivations.
        for sentence, count in [("n + n", 1), ("n + n + n", 2),
                                ("n + n + n + n", 5)]:
            for name in TREE_ENGINES:
                assert lang.parse(sentence, engine=name).ambiguity == count


def boolean_sentence(operands):
    """``true and true or ...`` with ``operands`` operands (bench sizes)."""
    words = ["true"]
    for index in range(operands - 1):
        words.append("and" if index % 2 == 0 else "or")
        words.append("true")
    return " ".join(words)


class TestGssAtScale:
    """The merged-stack engine at every §7 booleans input size.

    The linear-stack pool engines are exponential on the medium/large
    sentences, so the differential reference shrinks as the input grows:
    trees vs ``lazy`` on small inputs, self-consistent acceptance and
    counting beyond the pool's reach.
    """

    SIZES = {"tiny": 3, "small": 10, "medium": 40, "large": 120}

    @pytest.mark.parametrize("size", sorted(SIZES))
    def test_acceptance_at_every_size(self, size):
        lang = Language.from_text(BOOLEANS)
        sentence = boolean_sentence(self.SIZES[size])
        assert lang.recognize(sentence, engine="gss").accepted
        truncated = boolean_sentence(self.SIZES[size])[: -len(" true")]
        assert not lang.recognize(truncated, engine="gss").accepted

    def test_small_sizes_agree_with_lazy(self):
        lang = Language.from_text(BOOLEANS)
        for operands in (3, 10):
            sentence = boolean_sentence(operands)
            gss = lang.parse(sentence, engine="gss")
            lazy = lang.parse(sentence, engine="lazy")
            assert gss.accepted and lazy.accepted
            assert gss.ambiguity == lazy.ambiguity
            assert gss.brackets() == lazy.brackets()

    def test_forest_counts_catalan_beyond_enumeration(self):
        # 40 operands have far more derivations than anyone enumerates;
        # the packed forest counts them without unpacking.
        lang = Language.from_text(BOOLEANS)
        outcome = lang.parse(boolean_sentence(40), engine="gss")
        assert outcome.accepted
        assert outcome.forest is not None
        assert outcome.is_ambiguous
        assert outcome.forest.tree_count() > 10**6
        first = list(outcome.forest.trees(3))
        assert len(first) == 3

    def test_tree_agreement_with_lazy_survives_edits(self):
        lang = Language.from_text(AMBIGUOUS_EXPR)
        script = [
            ("add", "E ::= E * E", "n * n + n"),
            ("add", "E ::= ( E )", "( n + n ) * n"),
            ("delete", "E ::= E * E", "n + n + n"),
        ]
        for action, rule, sentence in script:
            if action == "add":
                assert lang.add_rule(rule)
            else:
                assert lang.delete_rule(rule)
            gss = lang.parse(sentence, engine="gss")
            lazy = lang.parse(sentence, engine="lazy")
            assert gss.accepted and lazy.accepted, (sentence, gss, lazy)
            assert gss.ambiguity == lazy.ambiguity
            assert gss.brackets() == lazy.brackets()


class TestEngineBehaviour:
    def test_earley_parse_is_a_capability_error(self):
        from repro.api import CapabilityError

        lang = Language.from_text(BOOLEANS)
        with pytest.raises(CapabilityError, match="builds no trees"):
            lang.parse("true", engine="earley")
        outcome = lang.recognize("true", engine="earley")
        assert outcome.accepted
        assert outcome.trees_built is False

    def test_dense_engine_rebuilds_after_edit(self):
        lang = Language.from_text(BOOLEANS)
        assert lang.recognize("true", engine="dense").accepted
        dense = lang.engine("dense")
        assert dense._pool is not None
        lang.add_rule("B ::= maybe")
        assert dense._pool is None  # invalidated by MODIFY
        assert lang.recognize("maybe or true", engine="dense").accepted

    def test_lazy_and_compiled_share_one_graph(self):
        lang = Language.from_text(BOOLEANS)
        lang.recognize("true or false", engine="lazy")
        states_after_lazy = len(lang.graph)
        lang.recognize("true or false", engine="compiled")
        assert len(lang.graph) == states_after_lazy

    def test_prepare_builds_dense_table_up_front(self):
        lang = Language.from_text(EXPR)
        dense = lang.engine("dense")
        assert dense._pool is None
        dense.prepare()
        assert dense._pool is not None

    def test_explicit_token_sequences_accepted(self, toks):
        lang = Language.from_text(BOOLEANS)
        for name in engines():
            assert lang.recognize(toks("true and false"), engine=name).accepted
