"""Differential property: warm-started languages ≡ cold languages.

A language that adopted its LR states from the persistent table store
must be observationally identical to one that expanded everything from
scratch — same acceptance, same ambiguity counts — on every engine tier
that consumes the shared control plane (lazy, compiled, dense, gss), on
random grammars, and across interleaved add/delete-rule edits (where
stale store entries must be ignored rather than poison the automaton).
"""

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.language import Language
from repro.lr.tablestore import TableStore
from repro.runtime.errors import CyclicForestError, SweepLimitExceeded

from .strategies import derive_sentence, grammars, is_pool_safe, rules

ENGINES = ("lazy", "compiled", "dense", "gss")

#: Small parse budget: differential equality holds for "ran out of
#: budget" too (same deterministic engines on both sides).
MAX_STEPS = 20_000


def observe(language: Language, text: str):
    """Per-engine fingerprint of one sentence, budget trips included."""
    results = {}
    for engine in ENGINES:
        try:
            outcome = language.parse(text, engine=engine)
        except SweepLimitExceeded:
            results[engine] = "budget"
        except CyclicForestError:
            results[engine] = "cyclic"
        else:
            results[engine] = (
                outcome.accepted,
                outcome.ambiguity if outcome.accepted else 0,
            )
    return results


def sample_sentences(grammar, data) -> list:
    """A few in-language derivations plus a few arbitrary strings."""
    texts = []
    for seed in (0, 1, 2):
        derived = derive_sentence(grammar, seed)
        if derived is not None and len(derived) <= 12:
            texts.append(" ".join(t.name for t in derived))
    for _ in range(2):
        letters = data.draw(
            st.lists(st.sampled_from("xyz"), max_size=5), label="sentence"
        )
        texts.append(" ".join(letters))
    return sorted(set(texts))


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_warm_start_is_observationally_cold(data):
    grammar = data.draw(
        grammars().filter(is_pool_safe), label="grammar"
    )
    sentences = sample_sentences(grammar, data)
    root = tempfile.mkdtemp(prefix="tablestore-prop-")
    try:
        store = TableStore(root)
        cold = Language(
            grammar.copy(), max_sweep_steps=MAX_STEPS
        )
        seeder = Language(
            grammar.copy(), max_sweep_steps=MAX_STEPS, table_store=store
        )
        for text in sentences:
            observe(seeder, text)
        seeder.persist_tables()

        warm = Language(
            grammar.copy(), max_sweep_steps=MAX_STEPS, table_store=store
        )
        for text in sentences:
            assert observe(warm, text) == observe(cold, text)

        # Interleaved edits: the same add/delete applied to both sides.
        # The warm side's adopted states must invalidate exactly like
        # freshly expanded ones.
        added = data.draw(rules(3, allow_epsilon=False), label="added rule")
        assert cold.add_rule(added) == warm.add_rule(added)
        victims = [r for r in grammar.rules if str(r.lhs) != "START"]
        if victims:
            victim = data.draw(st.sampled_from(victims), label="deleted rule")
            assert cold.delete_rule(victim) == warm.delete_rule(victim)
        for text in sentences:
            assert observe(warm, text) == observe(cold, text)

        # Persist the edited automaton and warm-start a third language
        # from it: stale pre-edit entries coexist with the new ones and
        # must not leak in.
        warm.persist_tables()
        third = Language(
            warm.grammar.copy(), max_sweep_steps=MAX_STEPS, table_store=store
        )
        for text in sentences:
            assert observe(third, text) == observe(cold, text)
    finally:
        shutil.rmtree(root, ignore_errors=True)
