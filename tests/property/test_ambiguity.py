"""Ambiguity accounting: the pool parser finds *all* parses.

The OBJ-style backtracking parser enumerates every derivation by brute
force (its one virtue); on grammars both engines handle, the pool parser's
tree count must match exactly.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.baselines.rd_backtrack import (
    BacktrackBudgetExceeded,
    BacktrackingParser,
)
from repro.grammar.analysis import GrammarAnalysis
from repro.lr.generator import ConventionalGenerator
from repro.runtime.errors import SweepLimitExceeded
from repro.runtime.forest import bracketed, tokens_of
from repro.runtime.parallel import PoolParser

from .strategies import derive_sentence, grammars, is_pool_safe, sentences


def _both_safe(grammar) -> bool:
    analysis = GrammarAnalysis(grammar)
    return (
        is_pool_safe(grammar)
        and not analysis.left_recursive()  # backtracking cannot do these
    )


@settings(max_examples=40, deadline=None)
@given(grammars(max_rules=7, allow_epsilon=False), sentences(max_length=5))
def test_pool_tree_count_matches_backtracking(grammar, sentence):
    assume(_both_safe(grammar))
    pool = PoolParser(
        ConventionalGenerator(grammar.copy()).generate(),
        grammar,
        max_sweep_steps=5_000,
    )
    backtracking = BacktrackingParser(grammar, max_steps=200_000)
    try:
        pool_trees = pool.parse(sentence).trees
        bt_trees = backtracking.parses(sentence)
    except (SweepLimitExceeded, BacktrackBudgetExceeded):
        assume(False)
        return
    assert len(pool_trees) == len(bt_trees)
    assert {bracketed(t) for t in pool_trees} == {
        bracketed(t) for t in bt_trees
    }


@settings(max_examples=40, deadline=None)
@given(grammars(allow_epsilon=False), st.integers(0, 2 ** 32))
def test_every_tree_yields_the_input(grammar, seed):
    assume(is_pool_safe(grammar))
    sentence = derive_sentence(grammar, seed)
    assume(sentence is not None)
    pool = PoolParser(
        ConventionalGenerator(grammar.copy()).generate(),
        grammar,
        max_sweep_steps=5_000,
    )
    try:
        result = pool.parse(sentence)
    except SweepLimitExceeded:
        assume(False)
        return
    assert result.accepted
    for tree in result.trees:
        assert tokens_of(tree) == tuple(sentence)


@settings(max_examples=40, deadline=None)
@given(grammars(), sentences(max_length=5))
def test_trees_are_pairwise_distinct(grammar, sentence):
    assume(is_pool_safe(grammar))
    pool = PoolParser(
        ConventionalGenerator(grammar.copy()).generate(),
        grammar,
        max_sweep_steps=5_000,
    )
    try:
        result = pool.parse(sentence)
    except SweepLimitExceeded:
        assume(False)
        return
    rendered = [bracketed(t) for t in result.trees]
    assert len(rendered) == len(set(rendered))
