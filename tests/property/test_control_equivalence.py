"""Differential tests: CompiledControl ≡ LazyControl ≡ dense TableControl.

Every control tier must accept the same sentences and produce the same
number of distinct parse trees, on random grammars, both on the initial
grammar and across interleaved add/delete-rule edits (where the compiled
cache's invalidation has to keep pace with MODIFY while the dense table
is rebuilt from scratch as the ground truth).  The merged-stack GSS
engine rides along as a fourth tier: same acceptance, and its packed
forest must count the same number of distinct derivations the pool
enumerates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalGenerator
from repro.grammar.grammar import Grammar
from repro.lr.compiled import CompiledControl
from repro.lr.graph import ItemSetGraph
from repro.lr.table import TableControl, lr0_table
from repro.runtime.errors import CyclicForestError, SweepLimitExceeded
from repro.runtime.gss import GSSParser
from repro.runtime.parallel import PoolParser

from .strategies import derive_sentence, grammars, is_pool_safe, rules, sentences

MAX_STEPS = 20_000


def lazy_parser(grammar: Grammar) -> PoolParser:
    generator = IncrementalGenerator(grammar)
    return PoolParser(generator.control, grammar, max_sweep_steps=MAX_STEPS)


def compiled_parser(grammar: Grammar) -> PoolParser:
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    return PoolParser(control, grammar, max_sweep_steps=MAX_STEPS)


def table_parser(grammar: Grammar) -> PoolParser:
    """Ground truth: a dense table built from scratch for this grammar."""
    graph = ItemSetGraph(grammar.copy())
    graph.expand_all()
    return PoolParser(
        TableControl(lr0_table(graph)), grammar, max_sweep_steps=MAX_STEPS
    )


def gss_parser(grammar: Grammar) -> GSSParser:
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    return GSSParser(control, max_steps_per_token=MAX_STEPS, grammar=grammar)


def outcome(parser: PoolParser, sentence):
    try:
        result = parser.parse(sentence)
    except SweepLimitExceeded:
        return "budget"
    return (result.accepted, len(result.trees))


def gss_outcome(parser: GSSParser, sentence):
    """``(accepted, tree count)`` — the pool ``outcome`` shape.

    The merged stack explores shared structure the linear stacks pay for
    per fork, so its step budget trips on different sentences; "budget"
    and "cyclic" mark outcomes with no pool-comparable answer.
    """
    try:
        result = parser.parse(list(sentence))
    except SweepLimitExceeded:
        return "budget"
    if not result.accepted:
        return (False, 0)
    try:
        return (True, result.forest.tree_count())
    except CyclicForestError:
        return "cyclic"


def assert_gss_agrees(gss: GSSParser, sentence, expected) -> None:
    merged = gss_outcome(gss, sentence)
    if expected == "budget" or merged in ("budget", "cyclic"):
        return
    assert merged == expected, sentence


def probe_sentences(draw, grammar, count=4):
    probes = []
    for seed in range(count):
        derived = derive_sentence(grammar, seed=seed)
        if derived is not None and len(derived) <= 12:
            probes.append(derived)
    probes.append(draw(sentences(max_length=5)))
    return probes


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_three_tiers_agree_on_random_grammars(data):
    grammar = data.draw(grammars())
    if not is_pool_safe(grammar):
        return
    lazy = lazy_parser(grammar.copy())
    compiled = compiled_parser(grammar.copy())
    gss = gss_parser(grammar.copy())
    table = table_parser(grammar)
    for sentence in probe_sentences(data.draw, grammar):
        expected = outcome(lazy, sentence)
        assert outcome(compiled, sentence) == expected
        assert outcome(table, sentence) == expected
        assert_gss_agrees(gss, sentence, expected)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_compiled_tracks_interleaved_edits(data):
    """Edits must flush exactly the stale ACTION entries — a compiled
    parse after MODIFY agrees with a from-scratch dense table."""
    grammar = data.draw(grammars(max_rules=8))
    if not is_pool_safe(grammar):
        return
    lazy_grammar = grammar.copy()
    compiled_grammar = grammar.copy()
    gss_grammar = grammar.copy()
    lazy = lazy_parser(lazy_grammar)
    compiled = compiled_parser(compiled_grammar)
    gss = gss_parser(gss_grammar)

    for _round in range(data.draw(st.integers(1, 3))):
        rule = data.draw(rules(nonterminal_count=4))
        if data.draw(st.booleans()) and rule in compiled_grammar:
            lazy_grammar.delete_rule(rule)
            compiled_grammar.delete_rule(rule)
            gss_grammar.delete_rule(rule)
        else:
            lazy_grammar.add_rule(rule)
            compiled_grammar.add_rule(rule)
            gss_grammar.add_rule(rule)
        if not is_pool_safe(compiled_grammar):
            return
        table = table_parser(compiled_grammar)
        for sentence in probe_sentences(data.draw, compiled_grammar, count=3):
            expected = outcome(table, sentence)
            assert outcome(compiled, sentence) == expected
            assert outcome(lazy, sentence) == expected
            assert_gss_agrees(gss, sentence, expected)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_recognition_agrees_too(data):
    """States-only signatures: recognition outcomes match across tiers."""
    grammar = data.draw(grammars())
    if not is_pool_safe(grammar):
        return
    lazy = lazy_parser(grammar.copy())
    compiled = compiled_parser(grammar.copy())
    gss = gss_parser(grammar.copy())
    table = table_parser(grammar)
    for sentence in probe_sentences(data.draw, grammar, count=3):
        try:
            expected = lazy.recognize(sentence)
            assert compiled.recognize(sentence) == expected
            assert table.recognize(sentence) == expected
            assert gss.recognize(list(sentence)) == expected
        except SweepLimitExceeded:
            return
