"""Hypothesis strategies: random grammars, edits, sentences, derivations.

The generated grammars are deliberately small (≤5 non-terminals, ≤12
rules, bodies of ≤4 symbols) — LR automaton bugs show up at this scale,
and small cases shrink to readable counterexamples.  Helper predicates let
individual properties filter out the classes a given engine excludes
(cyclic grammars for the pool parser, left recursion for backtracking
descent).
"""

from __future__ import annotations

import random
from typing import List, Optional

from hypothesis import strategies as st

from repro.grammar.analysis import GrammarAnalysis
from repro.grammar.grammar import Grammar
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal

NONTERMINAL_NAMES = ("A", "B", "C", "D", "E")
TERMINAL_NAMES = ("x", "y", "z")


@st.composite
def rules(draw, nonterminal_count: int, allow_epsilon: bool = True) -> Rule:
    nonterminals = [NonTerminal(n) for n in NONTERMINAL_NAMES[:nonterminal_count]]
    terminals = [Terminal(t) for t in TERMINAL_NAMES]
    lhs = draw(st.sampled_from(nonterminals))
    min_size = 0 if allow_epsilon else 1
    body = draw(
        st.lists(
            st.sampled_from(terminals + nonterminals),
            min_size=min_size,
            max_size=4,
        )
    )
    return Rule(lhs, body)


@st.composite
def grammars(
    draw,
    max_nonterminals: int = 4,
    max_rules: int = 10,
    allow_epsilon: bool = True,
) -> Grammar:
    """A random grammar with ``START ::= A`` plus random rules."""
    nonterminal_count = draw(st.integers(1, max_nonterminals))
    rule_count = draw(st.integers(1, max_rules))
    grammar = Grammar()
    grammar.add_rule(Rule(grammar.start, [NonTerminal("A")]))
    for _ in range(rule_count):
        grammar.add_rule(
            draw(rules(nonterminal_count, allow_epsilon=allow_epsilon))
        )
    return grammar


@st.composite
def sentences(draw, max_length: int = 6) -> List[Terminal]:
    """A random terminal string (mostly *not* in any given language)."""
    return draw(
        st.lists(
            st.sampled_from([Terminal(t) for t in TERMINAL_NAMES]),
            max_size=max_length,
        )
    )


def derive_sentence(
    grammar: Grammar, seed: int, max_expansions: int = 40
) -> Optional[List[Terminal]]:
    """A sentence *of the language*, by random leftmost derivation.

    Returns None when the random walk fails to terminate within the
    expansion budget (the grammar may be non-productive).
    """
    rng = random.Random(seed)
    sentential: List = list(next(iter(grammar.start_rules())).rhs)
    expansions = 0
    while expansions < max_expansions:
        index = next(
            (
                i
                for i, symbol in enumerate(sentential)
                if isinstance(symbol, NonTerminal)
            ),
            None,
        )
        if index is None:
            return [s for s in sentential]
        candidates = grammar.rules_for(sentential[index])
        if not candidates:
            return None
        # bias towards shorter bodies so derivations terminate
        choice = min(
            rng.sample(list(candidates), k=min(2, len(candidates))),
            key=lambda r: len(r.rhs),
        )
        sentential[index : index + 1] = list(choice.rhs)
        expansions += 1
        if len(sentential) > 30:
            return None
    return None


def graph_shape(graph) -> dict:
    """Kernel-keyed structural fingerprint of an item-set graph.

    Only the region *reachable from the start state* is included, so
    retained garbage (a feature of the incremental generator) does not
    defeat equality checks.
    """
    from repro.lr.states import ACCEPT, ItemSet

    def key(state):
        return frozenset(map(str, state.kernel))

    shape = {}
    work = [graph.start]
    seen = {id(graph.start)}
    while work:
        state = work.pop()
        transitions = {}
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                transitions[str(symbol)] = "accept"
            else:
                transitions[str(symbol)] = key(target)
                if id(target) not in seen:
                    seen.add(id(target))
                    work.append(target)
        shape[key(state)] = (
            frozenset(transitions.items()),
            frozenset(map(str, state.reductions)),
        )
    return shape


def is_pool_safe(grammar: Grammar) -> bool:
    """Can PAR-PARSE run without hitting its infinite-ambiguity guards?

    Excludes unit-derivation cycles and (directly) hidden left recursion —
    the configurations that let the pool of linear stacks grow without
    consuming input.  The check is a heuristic pre-filter: properties that
    use it still catch ``SweepLimitExceeded`` and discard the example,
    because *indirect* hidden left recursion slips through.
    """
    analysis = GrammarAnalysis(grammar)
    if analysis.has_cycles():
        return False
    return not _has_hidden_left_recursion(grammar, analysis)


def _has_hidden_left_recursion(grammar: Grammar, analysis) -> bool:
    """A ::= N1 ... Nk A ... with all Ni nullable and k >= 1."""
    for rule in grammar.rules:
        for position, symbol in enumerate(rule.rhs):
            if position == 0:
                continue
            if not isinstance(symbol, NonTerminal):
                break
            prefix = rule.rhs[:position]
            if symbol == rule.lhs and all(
                analysis.is_nullable(s) for s in prefix
            ):
                return True
            if not analysis.is_nullable(rule.rhs[position - 1]):
                break
    return False
