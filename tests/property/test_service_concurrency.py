"""Property: concurrent sessions never observe a torn grammar version.

Each session is pinned to one shard (single-writer), so from any one
session's point of view its request stream is strictly sequential even
while other sessions' streams run on other threads.  The observable
contract: every ``parse``/``recognize`` response's ``version`` equals
exactly the version produced by the edits that session had issued before
it — never a neighbour's version, never a half-applied one, never a stale
one.  Hypothesis drives randomized per-session scripts of unique-rule
edits and parses, executed concurrently (one client thread per session,
like real connections), and the invariant is checked per session against
the version arithmetic of the sequential semantics.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.service import Scheduler

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

#: per-session script: each element is "edit" or a sentence to parse
scripts = st.lists(
    st.lists(
        st.one_of(
            st.just("edit"),
            st.sampled_from(["true", "false", "true or false", "true or true or false"]),
        ),
        min_size=1,
        max_size=10,
    ),
    min_size=2,
    max_size=5,
)


@settings(max_examples=15, deadline=None)
@given(scripts)
def test_versions_are_never_torn(session_scripts):
    with Scheduler(workers=3, max_depth=4096) as scheduler:
        observations = {}
        failures = []

        def client(name, script):
            def body():
                try:
                    opened = scheduler.handle(
                        {"cmd": "open", "session": name, "grammar": GRAMMAR}
                    )
                    observed = [("open", opened)]
                    for step, op in enumerate(script):
                        if op == "edit":
                            response = scheduler.handle(
                                {
                                    "cmd": "add-rule",
                                    "session": name,
                                    # unique per step: every edit really bumps
                                    "rule": f"B ::= extra{step}",
                                }
                            )
                            observed.append(("edit", response))
                        else:
                            response = scheduler.handle(
                                {"cmd": "parse", "session": name, "tokens": op}
                            )
                            observed.append(("parse", response))
                    observations[name] = observed
                except Exception as error:  # noqa: BLE001 — test thread
                    failures.append((name, error))

            return body

        threads = [
            threading.Thread(target=client(f"u{index}", script))
            for index, script in enumerate(session_scripts)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures
        assert len(observations) == len(session_scripts)

        for name, observed in observations.items():
            kind, opened = observed[0]
            assert kind == "open" and "error" not in opened, opened
            version = opened["version"]
            for kind, response in observed[1:]:
                assert "error" not in response, (name, response)
                if kind == "edit":
                    assert response["added"] is True
                    # an applied edit advances the version by exactly one
                    assert response["version"] == version + 1, (name, response)
                    version += 1
                else:
                    assert response["accepted"] is True
                    # a parse reports exactly the version its session had —
                    # a torn read would surface a neighbour's count here
                    assert response["version"] == version, (name, response)
