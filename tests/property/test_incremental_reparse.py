"""Differential properties: ``reparse(edit)`` ≡ ``parse(spliced tokens)``.

The incremental layer's whole contract is observational equivalence with
a from-scratch parse of the edited input — trees (bracketed forms),
ambiguity counts, acceptance, and rejection diagnostics (token index +
expected set) must all match, for random grammars, random inputs, random
splice edits, chained edits, and edits interleaved with grammar
modifications (which must invalidate checkpoints via the
``Grammar.subscribe`` epoch).  The bulk suites below are deterministic
seeded sweeps (hundreds of cases, no shrinking overhead); a hypothesis
pass adds shape diversity on top.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Language
from repro.grammar.grammar import Grammar, GrammarError
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.errors import SweepLimitExceeded

from .strategies import derive_sentence, grammars, is_pool_safe

TERMINALS = [Terminal(name) for name in ("x", "y", "z")]
NONTERMINAL_NAMES = ("A", "B", "C")


def random_grammar(rng: random.Random) -> Optional[Grammar]:
    """A small random grammar (pool-safe or None)."""
    grammar = Grammar()
    grammar.add_rule(Rule(grammar.start, [NonTerminal("A")]))
    nonterminals = [
        NonTerminal(name) for name in NONTERMINAL_NAMES[: rng.randint(1, 3)]
    ]
    symbols = TERMINALS + nonterminals
    for _ in range(rng.randint(1, 9)):
        body = [rng.choice(symbols) for _ in range(rng.randint(0, 4))]
        try:
            grammar.add_rule(Rule(rng.choice(nonterminals), body))
        except GrammarError:
            continue
    return grammar if is_pool_safe(grammar) else None


def random_input(
    rng: random.Random, grammar: Grammar, max_length: int = 10
) -> List[Terminal]:
    """Half valid sentences (random derivation), half arbitrary strings."""
    if rng.random() < 0.5:
        derived = derive_sentence(grammar, seed=rng.randrange(1 << 30))
        if derived is not None and len(derived) <= max_length:
            return derived
    return [rng.choice(TERMINALS) for _ in range(rng.randint(0, max_length))]


def random_edit(
    rng: random.Random, length: int
) -> Tuple[int, int, List[Terminal]]:
    start = rng.randint(0, length)
    end = rng.randint(start, length)
    replacement = [rng.choice(TERMINALS) for _ in range(rng.randint(0, 4))]
    return start, end, replacement


def fingerprint(outcome) -> dict:
    """Everything the equivalence promise covers, in comparable form."""
    data = {
        "accepted": outcome.accepted,
        "ambiguity": outcome.ambiguity,
        "brackets": outcome.brackets(),
        "diagnostic": None,
    }
    if outcome.diagnostic is not None:
        payload = outcome.diagnostic.to_payload()
        data["diagnostic"] = (
            payload["message"],
            payload["token_index"],
            tuple(payload["expected"]),
        )
    return data


def splice(tokens, start, end, replacement):
    return list(tokens[:start]) + list(replacement) + list(tokens[end:])


class TestReparseEquivalence:
    def test_bulk_random_grammars_and_edits(self):
        """>=200 random (grammar, input, edit) cases, tree mode."""
        rng = random.Random(20260728)
        checked = 0
        attempts = 0
        while checked < 220 and attempts < 2500:
            attempts += 1
            grammar = random_grammar(rng)
            if grammar is None:
                continue
            language = Language(grammar)
            tokens = random_input(rng, grammar)
            start, end, replacement = random_edit(rng, len(tokens))
            try:
                base = language.parse(tokens, checkpoint=True)
                edited = language.reparse(base, start, end, replacement)
                scratch = language.parse(splice(tokens, start, end, replacement))
            except SweepLimitExceeded:
                continue  # indirect hidden left recursion slipped the filter
            assert fingerprint(edited) == fingerprint(scratch), (
                f"divergence: grammar={grammar.pretty()!r} "
                f"tokens={[t.name for t in tokens]} "
                f"edit=[{start}:{end}]->"
                f"{[t.name for t in replacement]}"
            )
            checked += 1
        assert checked >= 220

    def test_bulk_recognition_mode(self):
        rng = random.Random(9241)
        checked = 0
        attempts = 0
        while checked < 120 and attempts < 1500:
            attempts += 1
            grammar = random_grammar(rng)
            if grammar is None:
                continue
            language = Language(grammar)
            tokens = random_input(rng, grammar)
            start, end, replacement = random_edit(rng, len(tokens))
            try:
                base = language.recognize(tokens, checkpoint=True)
                edited = language.reparse(base, start, end, replacement)
                scratch = language.recognize(
                    splice(tokens, start, end, replacement)
                )
            except SweepLimitExceeded:
                continue
            assert fingerprint(edited) == fingerprint(scratch)
            checked += 1
        assert checked >= 120

    def test_chained_edits(self):
        """Each reparse output is itself a valid base for the next edit."""
        rng = random.Random(5150)
        checked = 0
        attempts = 0
        while checked < 60 and attempts < 900:
            attempts += 1
            grammar = random_grammar(rng)
            if grammar is None:
                continue
            language = Language(grammar)
            tokens = random_input(rng, grammar)
            try:
                current = language.parse(tokens, checkpoint=True)
            except SweepLimitExceeded:
                continue
            ok = True
            for _ in range(3):
                start, end, replacement = random_edit(rng, len(tokens))
                tokens = splice(tokens, start, end, replacement)
                try:
                    current = language.reparse(current, start, end, replacement)
                    scratch = language.parse(tokens)
                except SweepLimitExceeded:
                    ok = False
                    break
                assert fingerprint(current) == fingerprint(scratch)
            if ok:
                checked += 1
        assert checked >= 60

    def test_interleaved_grammar_edits_invalidate_checkpoints(self):
        """A MODIFY between parse and reparse forces (correct) fallback."""
        rng = random.Random(31337)
        checked = 0
        fallbacks = 0
        attempts = 0
        while checked < 50 and attempts < 800:
            attempts += 1
            grammar = random_grammar(rng)
            if grammar is None:
                continue
            language = Language(grammar)
            tokens = random_input(rng, grammar)
            start, end, replacement = random_edit(rng, len(tokens))
            try:
                base = language.parse(tokens, checkpoint=True)
            except SweepLimitExceeded:
                continue
            # Interleaved MODIFY: add (or delete) a rule, then reparse.
            lhs = NonTerminal(rng.choice(NONTERMINAL_NAMES))
            body = [rng.choice(TERMINALS) for _ in range(rng.randint(1, 3))]
            try:
                changed = language.add_rule(Rule(lhs, body))
            except GrammarError:
                continue
            if not is_pool_safe(language.grammar):
                continue
            try:
                edited = language.reparse(base, start, end, replacement)
                scratch = language.parse(splice(tokens, start, end, replacement))
            except SweepLimitExceeded:
                continue
            assert fingerprint(edited) == fingerprint(scratch)
            if changed:
                # The checkpoints predate the MODIFY: the reparse must
                # have refused them (Grammar.subscribe bumped the epoch).
                assert edited.reuse is not None
                assert edited.reuse.get("fallback") == "grammar-modified"
                fallbacks += 1
            checked += 1
        assert checked >= 50
        assert fallbacks >= 25  # the MODIFY genuinely changed the grammar

    @pytest.mark.parametrize("engine", ["lazy", "dense", "gss", "earley"])
    def test_other_engines_agree(self, engine):
        """Supporting engines reuse, the rest fall back — all must agree."""
        rng = random.Random(hash(engine) & 0xFFFF)
        checked = 0
        attempts = 0
        while checked < 25 and attempts < 400:
            attempts += 1
            grammar = random_grammar(rng)
            if grammar is None:
                continue
            language = Language(grammar)
            tokens = random_input(rng, grammar)
            start, end, replacement = random_edit(rng, len(tokens))
            # Recognize-only engines refuse tree mode outright, so the
            # equivalence for them is over acceptance.
            entry = (
                language.parse
                if language.engine(engine).supports_trees
                else language.recognize
            )
            try:
                base = entry(tokens, engine=engine, checkpoint=True)
                edited = language.reparse(base, start, end, replacement)
                scratch = entry(
                    splice(tokens, start, end, replacement), engine=engine
                )
            except SweepLimitExceeded:
                continue
            assert edited.accepted == scratch.accepted
            assert edited.brackets() == scratch.brackets()
            checked += 1
        assert checked >= 25


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(data=st.data())
def test_reparse_equivalence_hypothesis(data):
    """Shape diversity on top of the seeded sweeps (epsilon rules etc.)."""
    grammar = data.draw(grammars(max_nonterminals=3, max_rules=8))
    if not is_pool_safe(grammar):
        return
    language = Language(grammar)
    tokens = data.draw(
        st.lists(st.sampled_from(TERMINALS), max_size=8)
    )
    start = data.draw(st.integers(0, len(tokens)))
    end = data.draw(st.integers(start, len(tokens)))
    replacement = data.draw(st.lists(st.sampled_from(TERMINALS), max_size=3))
    try:
        base = language.parse(tokens, checkpoint=True)
        edited = language.reparse(base, start, end, replacement)
        scratch = language.parse(splice(tokens, start, end, replacement))
    except SweepLimitExceeded:
        return
    assert fingerprint(edited) == fingerprint(scratch)
