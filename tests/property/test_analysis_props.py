"""Grammar-analysis invariants, checked against actual derivations."""

from hypothesis import assume, given, settings, strategies as st

from repro.grammar.analysis import GrammarAnalysis
from repro.grammar.symbols import NonTerminal, Terminal

from .strategies import derive_sentence, grammars


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_first_contains_rule_firsts(grammar):
    analysis = GrammarAnalysis(grammar)
    for rule in grammar.rules:
        assert analysis.first_of(rule.rhs) <= analysis.first(rule.lhs)


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_nullable_consistent_with_rules(grammar):
    analysis = GrammarAnalysis(grammar)
    for nonterminal in grammar.nonterminals:
        derivable_empty = any(
            analysis.sequence_nullable(rule.rhs)
            for rule in grammar.rules_for(nonterminal)
        )
        # nullable iff some body is entirely nullable
        assert analysis.is_nullable(nonterminal) == derivable_empty


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_follow_contains_successor_firsts(grammar):
    analysis = GrammarAnalysis(grammar)
    for rule in grammar.rules:
        body = rule.rhs
        for index, symbol in enumerate(body):
            if isinstance(symbol, NonTerminal):
                tail_first = analysis.first_of(body[index + 1 :])
                assert tail_first <= analysis.follow(symbol)


@settings(max_examples=60, deadline=None)
@given(grammars(allow_epsilon=False), st.integers(0, 2 ** 32))
def test_derived_sentence_starts_in_first_of_start(grammar, seed):
    sentence = derive_sentence(grammar, seed)
    assume(sentence)
    analysis = GrammarAnalysis(grammar)
    assert sentence[0] in analysis.first(grammar.start)


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_reachable_closed_under_rules(grammar):
    analysis = GrammarAnalysis(grammar)
    reachable = analysis.reachable()
    for nonterminal in reachable:
        for rule in grammar.rules_for(nonterminal):
            for symbol in rule.rhs:
                if isinstance(symbol, NonTerminal):
                    assert symbol in reachable


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_useless_rules_never_reachable_and_productive(grammar):
    analysis = GrammarAnalysis(grammar)
    useless = analysis.useless_rules()
    reachable = analysis.reachable()
    productive = analysis.productive()
    for rule in grammar.rules:
        if rule in useless:
            continue
        assert rule.lhs in reachable
        for symbol in rule.rhs:
            if isinstance(symbol, NonTerminal):
                assert symbol in productive


@settings(max_examples=40, deadline=None)
@given(grammars(allow_epsilon=False), st.integers(0, 2 ** 32))
def test_productive_nonterminals_really_produce(grammar, seed):
    analysis = GrammarAnalysis(grammar)
    sentence = derive_sentence(grammar, seed)
    assume(sentence is not None)
    # a successful derivation exists ⇒ START's expansion target productive
    (start_rule,) = grammar.start_rules()
    for symbol in start_rule.rhs:
        if isinstance(symbol, NonTerminal):
            assert symbol in analysis.productive()
