"""The reproduction's two central equivalence properties.

1. **Lazy ≡ conventional** (section 5): forcing the lazy generator yields
   exactly the graph the conventional generator builds up front.
2. **Incremental ≡ fresh** (section 6): after an arbitrary sequence of
   rule additions and deletions, the incrementally maintained graph is —
   on its reachable part — identical to a graph generated from scratch
   for the final grammar.  This is the property MODIFY's correctness
   argument (the transition-on-A lemma) promises.
"""

from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalGenerator
from repro.core.lazy import LazyGenerator
from repro.lr.generator import ConventionalGenerator

from .strategies import grammars, graph_shape, rules


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_lazy_equals_conventional(grammar):
    lazy = LazyGenerator(grammar)
    lazy.force()
    conventional = ConventionalGenerator(grammar.copy())
    conventional.generate()
    assert graph_shape(lazy.graph) == graph_shape(conventional.graph)


@settings(max_examples=60, deadline=None)
@given(grammars())
def test_partial_lazy_graph_is_a_restriction(grammar):
    """Even half-expanded, every complete lazy state matches its
    conventional counterpart (same kernel ⇒ same transitions/reductions)."""
    from repro.grammar.symbols import Terminal
    from repro.runtime.parallel import PoolParser

    lazy = LazyGenerator(grammar)
    parser = PoolParser(lazy.control(), grammar)
    try:
        parser.recognize([Terminal("x"), Terminal("y")])
        parser.recognize([Terminal("x")])
    except Exception:
        pass  # guard trips on pathological grammars; the graph is still valid

    conventional = ConventionalGenerator(grammar.copy())
    conventional.generate()
    reference = {
        frozenset(map(str, s.kernel)): s for s in conventional.graph.states()
    }
    for state in lazy.graph.states():
        if not state.is_complete:
            continue
        twin = reference[frozenset(map(str, state.kernel))]
        assert frozenset(map(str, state.reductions)) == frozenset(
            map(str, twin.reductions)
        )
        assert {str(s) for s in state.transitions} == {
            str(s) for s in twin.transitions
        }


@settings(max_examples=40, deadline=None)
@given(
    grammars(),
    st.lists(
        st.tuples(st.booleans(), rules(nonterminal_count=4)),
        min_size=1,
        max_size=6,
    ),
    st.booleans(),
)
def test_incremental_equals_fresh(grammar, edits, gc):
    generator = IncrementalGenerator(grammar, gc=gc)
    # interleave edits with partial expansion, like a real editing session
    generator.graph.expand_all()
    for add, rule in edits:
        if add:
            generator.add_rule(rule)
        else:
            generator.delete_rule(rule)
        generator.graph.expand_all()

    fresh = LazyGenerator(grammar.copy())
    fresh.force()
    assert graph_shape(generator.graph) == graph_shape(fresh.graph)


@settings(max_examples=40, deadline=None)
@given(
    grammars(max_rules=6),
    st.lists(rules(nonterminal_count=3), min_size=1, max_size=4),
)
def test_add_then_delete_roundtrip(grammar, new_rules):
    """Adding rules and deleting them again restores the original graph."""
    baseline = LazyGenerator(grammar.copy())
    baseline.force()
    expected = graph_shape(baseline.graph)

    generator = IncrementalGenerator(grammar, gc=True)
    generator.graph.expand_all()
    actually_added = [r for r in new_rules if generator.add_rule(r)]
    generator.graph.expand_all()
    for rule in actually_added:
        generator.delete_rule(rule)
    generator.graph.expand_all()
    assert graph_shape(generator.graph) == expected
