"""Serialization round trips over random grammars."""

from hypothesis import assume, given, settings, strategies as st

from repro.lr.generator import ConventionalGenerator
from repro.lr.lalr import lalr_table
from repro.lr.serialize import loads, dumps, table_from_dict, table_to_dict
from repro.lr.table import TableControl, lr0_table, resolve_conflicts
from repro.runtime.errors import SweepLimitExceeded
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.parallel import PoolParser

from .strategies import grammars, is_pool_safe, sentences


@settings(max_examples=40, deadline=None)
@given(grammars(), sentences(max_length=4))
def test_lr0_table_round_trip_preserves_verdicts(grammar, sentence):
    assume(is_pool_safe(grammar))
    generator = ConventionalGenerator(grammar)
    generator.generate()
    table = lr0_table(generator.graph)
    clone = loads(dumps(table))

    original = PoolParser(TableControl(table), grammar, max_sweep_steps=5_000)
    restored = PoolParser(TableControl(clone), grammar, max_sweep_steps=5_000)
    try:
        assert original.recognize(sentence) == restored.recognize(sentence)
    except SweepLimitExceeded:
        assume(False)


@settings(max_examples=40, deadline=None)
@given(grammars())
def test_encoding_is_deterministic_and_stable(grammar):
    generator = ConventionalGenerator(grammar)
    generator.generate()
    table = lr0_table(generator.graph)
    first = dumps(table)
    second = dumps(loads(first))
    assert first == second  # a fixpoint after one round trip


@settings(max_examples=30, deadline=None)
@given(grammars(), sentences(max_length=4))
def test_resolved_lalr_round_trip(grammar, sentence):
    table, _ = resolve_conflicts(lalr_table(grammar))
    assume(table.is_deterministic)
    clone = loads(dumps(table))
    original = SimpleLRParser(TableControl(table), grammar)
    restored = SimpleLRParser(TableControl(clone), grammar)
    assert original.recognize(sentence) == restored.recognize(sentence)


@settings(max_examples=30, deadline=None)
@given(grammars())
def test_structure_preserved(grammar):
    generator = ConventionalGenerator(grammar)
    generator.generate()
    table = lr0_table(generator.graph)
    clone = table_from_dict(table_to_dict(table))
    assert len(clone) == len(table)
    assert clone.start == table.start
    assert clone.terminals == table.terminals
    assert clone.nonterminals == table.nonterminals
    assert clone.cell_count() == table.cell_count()
    assert len(clone.conflicts()) == len(table.conflicts())
