"""ISG scanner properties: maximal munch, laziness transparency,
incremental-modification coherence."""

from hypothesis import assume, given, settings, strategies as st

from repro.lexing.chars import parse_char_class
from repro.lexing.regex import Sym, literal, plus
from repro.lexing.scanner import ScanError, Scanner

#: Keyword pool: lowercase words, distinct from each other.
keywords = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=4),
    min_size=1,
    max_size=4,
    unique=True,
)


def scanner_with(words):
    scanner = Scanner()
    for index, word in enumerate(words):
        scanner.add_token(f"K{index}", literal(word))
    scanner.add_token("ID", plus(Sym(parse_char_class("[a-d]"))))
    scanner.add_token("WS", plus(Sym(parse_char_class("[\\ ]"))), layout=True)
    return scanner


@settings(max_examples=60, deadline=None)
@given(keywords, st.lists(st.integers(), min_size=1, max_size=6))
def test_roundtrip_with_separators(words, picks):
    """Scanning space-joined tokens recovers exactly those tokens."""
    scanner = scanner_with(words)
    chosen = [words[i % len(words)] for i in picks]
    text = " ".join(chosen)
    lexemes = scanner.scan(text)
    assert [lex.text for lex in lexemes] == chosen


@settings(max_examples=60, deadline=None)
@given(keywords, st.integers(0, 100))
def test_cold_and_warm_scans_agree(words, salt):
    """Lazy DFA materialization is observationally transparent."""
    scanner = scanner_with(words)
    text = " ".join(words) + " " + "abcd"[salt % 4]
    cold = scanner.scan(text)
    warm = scanner.scan(text)
    assert cold == warm


@settings(max_examples=60, deadline=None)
@given(keywords)
def test_keywords_shadow_id_exactly(words):
    scanner = scanner_with(words)
    for index, word in enumerate(words):
        (lexeme,) = scanner.scan(word)
        assert lexeme.sort == f"K{index}"
    # a word not in the pool falls back to ID
    other = "abcd"[: max(1, len(words[0]) - 1)] + "dd"
    assume(other not in words)
    (lexeme,) = scanner.scan(other)
    assert lexeme.sort == "ID"


@settings(max_examples=40, deadline=None)
@given(keywords)
def test_removal_then_rescan_equals_fresh_scanner(words):
    """Incremental removal ≡ building a scanner without the definition."""
    assume(len(words) >= 2)
    text = " ".join(words)

    incremental = scanner_with(words)
    incremental.scan(text)  # warm, so invalidation has work to do
    incremental.remove_token("K0")

    fresh = Scanner()
    for index, word in enumerate(words):
        if index != 0:
            fresh.add_token(f"K{index}", literal(word))
    fresh.add_token("ID", plus(Sym(parse_char_class("[a-d]"))))
    fresh.add_token("WS", plus(Sym(parse_char_class("[\\ ]"))), layout=True)

    assert incremental.scan(text) == fresh.scan(text)


@settings(max_examples=60, deadline=None)
@given(keywords, st.text(alphabet="abcd ", max_size=12))
def test_lexemes_tile_the_input(words, text):
    """Lexemes (plus skipped layout) exactly tile the scanned text."""
    scanner = scanner_with(words)
    try:
        lexemes = scanner.scan(text)
    except ScanError:
        assume(False)
        return
    for lexeme in lexemes:
        assert text[lexeme.position : lexeme.position + len(lexeme.text)] == (
            lexeme.text
        )
    # non-layout lexemes never overlap and appear in order
    positions = [lex.position for lex in lexemes]
    assert positions == sorted(positions)
