"""Property-based tests (hypothesis).

A deterministic profile is loaded for the whole package: randomized
search is excellent at *finding* counterexamples during development, but
a released test suite must have reproducible content and runtime.  With
``derandomize=True`` every run explores the same example sequence — rare
pathological grammars (hypothesis can synthesize LALR inputs whose
lookahead closure takes minutes) cannot turn a green suite into an
unbounded one.  To hunt with fresh randomness, run::

    HYPOTHESIS_PROFILE=search pytest tests/property
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-deterministic",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "search",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-deterministic"))
