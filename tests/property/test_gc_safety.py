"""GC safety: collection never changes the recognized language, and the
refcount books always balance after realistic editing sessions."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.incremental import IncrementalGenerator
from repro.runtime.errors import SweepLimitExceeded
from repro.runtime.parallel import PoolParser

from .strategies import grammars, graph_shape, is_pool_safe, rules, sentences


@settings(max_examples=30, deadline=None)
@given(
    grammars(max_rules=6),
    st.lists(rules(nonterminal_count=3), min_size=1, max_size=4),
    st.lists(sentences(max_length=4), min_size=1, max_size=3),
)
def test_language_stable_across_gc(grammar, new_rules, probe_sentences):
    assume(is_pool_safe(grammar))
    generator = IncrementalGenerator(grammar, gc=True)
    parser = PoolParser(generator.control, grammar, max_sweep_steps=5_000)

    def verdicts():
        out = []
        for sentence in probe_sentences:
            try:
                out.append(parser.recognize(sentence))
            except SweepLimitExceeded:
                out.append("guard")
        return out

    verdicts()  # warm the graph
    added = [r for r in new_rules if generator.add_rule(r)]
    before_sweep = verdicts()
    generator.collect_garbage(force_sweep=True)
    assert verdicts() == before_sweep
    for rule in added:
        generator.delete_rule(rule)
    after_delete = verdicts()
    generator.collect_garbage(force_sweep=True)
    assert verdicts() == after_delete


@settings(max_examples=30, deadline=None)
@given(
    grammars(max_rules=6),
    st.lists(
        st.tuples(st.booleans(), rules(nonterminal_count=3)),
        min_size=1,
        max_size=5,
    ),
    st.lists(sentences(max_length=4), min_size=1, max_size=2),
)
def test_refcounts_balance_after_sessions(grammar, edits, probe_sentences):
    assume(is_pool_safe(grammar))
    generator = IncrementalGenerator(grammar, gc=True)
    parser = PoolParser(generator.control, grammar, max_sweep_steps=5_000)
    collector = generator.collector
    assert collector is not None

    def probe():
        for sentence in probe_sentences:
            try:
                parser.recognize(sentence)
            except SweepLimitExceeded:
                pass

    probe()
    for add, rule in edits:
        if add:
            generator.add_rule(rule)
        else:
            generator.delete_rule(rule)
        probe()
    assert collector.check_refcounts() == []
    collector.collect_cycles()
    assert collector.check_refcounts() == []


@settings(max_examples=30, deadline=None)
@given(grammars(max_rules=6), st.lists(rules(3), min_size=1, max_size=3))
def test_sweep_equals_gc_off_reachable_shape(grammar, new_rules):
    """With or without GC, the reachable graph shape is the same."""
    with_gc = IncrementalGenerator(grammar, gc=True)
    without_gc = IncrementalGenerator(grammar.copy(), gc=False)
    for generator in (with_gc, without_gc):
        generator.graph.expand_all()
        for rule in new_rules:
            generator.add_rule(rule)
        generator.graph.expand_all()
    with_gc.collect_garbage(force_sweep=True)
    assert graph_shape(with_gc.graph) == graph_shape(without_gc.graph)
