"""Cross-engine agreement: Earley ≡ GSS ≡ pool (≡ IPG) on recognition.

Earley is grammar-driven with no generation phase; the GSS and pool
engines run off LR(0) tables (conventional or lazy).  Agreement across
random grammars and inputs is therefore a strong end-to-end check on the
entire table-generation stack.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.baselines.earley import EarleyParser
from repro.core.lazy import LazyGenerator
from repro.lr.generator import ConventionalGenerator
from repro.runtime.errors import SweepLimitExceeded
from repro.runtime.gss import GSSParser
from repro.runtime.parallel import PoolParser

from .strategies import derive_sentence, grammars, is_pool_safe, sentences


@settings(max_examples=50, deadline=None)
@given(grammars(), sentences())
def test_earley_agrees_with_gss(grammar, sentence):
    earley = EarleyParser(grammar)
    gss = GSSParser(ConventionalGenerator(grammar.copy()).generate())
    assert earley.recognize(sentence) == gss.recognize(sentence)


@settings(max_examples=50, deadline=None)
@given(grammars(), sentences())
def test_earley_agrees_with_pool(grammar, sentence):
    assume(is_pool_safe(grammar))
    earley = EarleyParser(grammar)
    pool = PoolParser(
        ConventionalGenerator(grammar.copy()).generate(),
        grammar,
        max_sweep_steps=5_000,
    )
    try:
        pool_verdict = pool.recognize(sentence)
    except SweepLimitExceeded:
        assume(False)
        return
    assert earley.recognize(sentence) == pool_verdict


@settings(max_examples=50, deadline=None)
@given(grammars(), sentences())
def test_lazy_pool_agrees_with_conventional_pool(grammar, sentence):
    assume(is_pool_safe(grammar))
    lazy = PoolParser(
        LazyGenerator(grammar).control(), grammar, max_sweep_steps=5_000
    )
    conventional = PoolParser(
        ConventionalGenerator(grammar.copy()).generate(),
        grammar.copy(),
        max_sweep_steps=5_000,
    )
    try:
        assert lazy.recognize(sentence) == conventional.recognize(sentence)
    except SweepLimitExceeded:
        assume(False)


@settings(max_examples=50, deadline=None)
@given(grammars(allow_epsilon=False), st.integers(0, 2 ** 32))
def test_derived_sentences_are_accepted(grammar, seed):
    """Positive cases: sentences derived from the grammar are recognized."""
    sentence = derive_sentence(grammar, seed)
    assume(sentence is not None)
    earley = EarleyParser(grammar)
    assert earley.recognize(sentence)
    gss = GSSParser(ConventionalGenerator(grammar.copy()).generate())
    assert gss.recognize(sentence)


@settings(max_examples=30, deadline=None)
@given(grammars(), sentences(max_length=4))
def test_deterministic_lalr_agrees_when_clean(grammar, sentence):
    """When LALR(1) is conflict-free, its deterministic parser must agree
    with Earley — the Yacc baseline is only used under this condition."""
    from repro.lr.lalr import lalr_table
    from repro.lr.table import TableControl
    from repro.runtime.lr_parse import SimpleLRParser

    table = lalr_table(grammar)
    assume(table.is_deterministic)
    det = SimpleLRParser(TableControl(table), grammar)
    earley = EarleyParser(grammar)
    assert det.recognize(sentence) == earley.recognize(sentence)
