"""Legacy setup shim.

The offline environment ships a setuptools without ``wheel``; this shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` perform an
editable install there.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
