"""Packaging for the IPG reproduction.

The offline environment ships a setuptools without ``wheel``; plain
``setup.py`` metadata (no PEP 517 build isolation) lets
``pip install -e . --no-build-isolation --no-use-pep517`` work there, and
installs the ``repro`` console script (REPL plus the ``serve``/``batch``
service subcommands).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package itself.
_version = re.search(
    r'__version__ = "([^"]+)"',
    (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(),
).group(1)

setup(
    name="repro-ipg",
    version=_version,
    description=(
        "Reproduction of Heering/Klint/Rekers, 'Incremental Generation of "
        "Parsers' (PLDI 1989), grown into a multi-session parse service"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
